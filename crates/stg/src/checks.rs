//! Explicit-state implementability checks (the paper's Section 3
//! properties, checked the "traditional" way on the enumerated state
//! graph).
//!
//! These serve as the baseline for the symbolic/explicit comparison and as
//! the differential-testing oracle for `stgcheck-core`'s BDD algorithms.

use std::collections::{HashMap, HashSet, VecDeque};

use stgcheck_petri::TransId;

use crate::signal::{Polarity, SignalId, SignalKind};
use crate::state_graph::{build_state_graph, SgError, SgOptions, StateGraph};
use crate::stg::{Code, Stg};

/// How strictly persistency is interpreted.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PersistencyPolicy {
    /// Allow a non-input signal to disable another non-input signal
    /// (the paper's footnote 1: arbitration points in non-deterministic
    /// circuits such as mutual-exclusion elements).
    pub allow_arbitration: bool,
}

/// A signal-persistency violation (Def. 3.2): `disabled` was enabled, then
/// `fired` fired and `disabled` is no longer enabled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PersistencyViolation {
    /// Vertex where both were enabled.
    pub state: usize,
    /// The transition whose firing caused the disabling.
    pub fired: TransId,
    /// The signal that lost its enabling.
    pub disabled: SignalId,
}

/// A transition-persistency violation (Def. 3.3(1), a *direct conflict*
/// occurrence).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransPersistencyViolation {
    /// Vertex where both transitions were enabled.
    pub state: usize,
    /// The transition that fired.
    pub fired: TransId,
    /// The transition that became disabled.
    pub disabled: TransId,
}

/// A determinism violation (Def. 3.5(1)): two edges with the same signal
/// edge label leave one state towards different states.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeterminismViolation {
    /// The branching vertex.
    pub state: usize,
    /// The ambiguous signal edge.
    pub edge: (SignalId, Polarity),
    /// Two distinct successor vertices reached under the same label.
    pub targets: (usize, usize),
}

/// A commutativity violation (Def. 3.5(2)): a diamond `s →a s1 →b s3`,
/// `s →b s2 →a s4` with `s3 ≠ s4`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommutativityViolation {
    /// The diamond's source vertex.
    pub state: usize,
    /// First signal edge.
    pub edge_a: (SignalId, Polarity),
    /// Second signal edge.
    pub edge_b: (SignalId, Polarity),
    /// The two distinct closing vertices.
    pub targets: (usize, usize),
}

/// A Complete State Coding violation (Def. 3.4): two states share a binary
/// code but enable different non-input signals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CscViolation {
    /// First vertex.
    pub state_a: usize,
    /// Second vertex.
    pub state_b: usize,
    /// The shared code.
    pub code: Code,
}

/// Checks signal persistency per Def. 3.2.
///
/// A violation is recorded when a signal `a`, enabled at a state, is no
/// longer enabled after another signal's transition fires, and either
/// * `a` is non-input (case 1; suppressed between two non-inputs when
///   `policy.allow_arbitration`), or
/// * `a` is an input disabled by a non-input or dummy transition (case 2).
///
/// Input-by-input disabling is a choice, not a violation.
pub fn signal_persistency_violations(
    stg: &Stg,
    sg: &StateGraph,
    policy: PersistencyPolicy,
) -> Vec<PersistencyViolation> {
    let mut out = Vec::new();
    for v in 0..sg.len() {
        let enabled_here = sg.enabled_signals(stg, v);
        for &(t, w) in sg.successors(v) {
            let fired_signal = stg.label(t).map(|l| l.signal);
            // Dummies "belong to the circuit": treat them as non-input.
            let fired_is_noninput = fired_signal.is_none_or(|s| stg.signal_kind(s).is_noninput());
            let enabled_after: HashSet<SignalId> = sg.enabled_signals(stg, w).into_iter().collect();
            for &a in &enabled_here {
                if Some(a) == fired_signal || enabled_after.contains(&a) {
                    continue;
                }
                let a_noninput = stg.signal_kind(a).is_noninput();
                let violation = if a_noninput {
                    !(policy.allow_arbitration && fired_is_noninput)
                } else {
                    fired_is_noninput
                };
                if violation {
                    out.push(PersistencyViolation { state: v, fired: t, disabled: a });
                }
            }
        }
    }
    out
}

/// Checks transition persistency per Def. 3.3(1): enabled transitions
/// disabled by the firing of another transition.
pub fn transition_persistency_violations(
    stg: &Stg,
    sg: &StateGraph,
) -> Vec<TransPersistencyViolation> {
    let net = stg.net();
    let mut out = Vec::new();
    for v in 0..sg.len() {
        for &(tj, w) in sg.successors(v) {
            let after = &sg.state(w).marking;
            for &(ti, _) in sg.successors(v) {
                if ti == tj {
                    continue;
                }
                if !net.is_enabled(ti, after) {
                    out.push(TransPersistencyViolation { state: v, fired: tj, disabled: ti });
                }
            }
        }
    }
    out
}

/// Checks determinism per Def. 3.5(1).
pub fn determinism_violations(stg: &Stg, sg: &StateGraph) -> Vec<DeterminismViolation> {
    let mut out = Vec::new();
    for v in 0..sg.len() {
        let mut by_edge: HashMap<(SignalId, Polarity), usize> = HashMap::new();
        for &(t, w) in sg.successors(v) {
            let Some(l) = stg.label(t) else { continue };
            match by_edge.entry((l.signal, l.polarity)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(w);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != w {
                        out.push(DeterminismViolation {
                            state: v,
                            edge: (l.signal, l.polarity),
                            targets: (*e.get(), w),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Checks commutativity per Def. 3.5(2) on every completed diamond.
pub fn commutativity_violations(stg: &Stg, sg: &StateGraph) -> Vec<CommutativityViolation> {
    // successor-by-edge maps, taking the first target per edge (determinism
    // violations are reported separately).
    let succ_by_edge: Vec<HashMap<(SignalId, Polarity), usize>> = (0..sg.len())
        .map(|v| {
            let mut m = HashMap::new();
            for &(t, w) in sg.successors(v) {
                if let Some(l) = stg.label(t) {
                    m.entry((l.signal, l.polarity)).or_insert(w);
                }
            }
            m
        })
        .collect();
    let mut out = Vec::new();
    for v in 0..sg.len() {
        let edges: Vec<_> = succ_by_edge[v].iter().map(|(&e, &w)| (e, w)).collect();
        for (i, &(ea, s1)) in edges.iter().enumerate() {
            for &(eb, s2) in &edges[i + 1..] {
                let (Some(&s3), Some(&s4)) = (succ_by_edge[s1].get(&eb), succ_by_edge[s2].get(&ea))
                else {
                    continue;
                };
                if s3 != s4 {
                    out.push(CommutativityViolation {
                        state: v,
                        edge_a: ea,
                        edge_b: eb,
                        targets: (s3, s4),
                    });
                }
            }
        }
    }
    out
}

/// Checks Complete State Coding per Def. 3.4: all pairs of equally-coded
/// states must enable the same non-input signals.
pub fn csc_violations(stg: &Stg, sg: &StateGraph) -> Vec<CscViolation> {
    let mut out = Vec::new();
    for (code, vertices) in sg.states_by_code() {
        if vertices.len() < 2 {
            continue;
        }
        let sets: Vec<Vec<SignalId>> =
            vertices.iter().map(|&v| sg.enabled_noninput_signals(stg, v)).collect();
        for i in 0..vertices.len() {
            for j in i + 1..vertices.len() {
                if sets[i] != sets[j] {
                    out.push(CscViolation { state_a: vertices[i], state_b: vertices[j], code });
                }
            }
        }
    }
    out.sort_by_key(|v| (v.state_a, v.state_b));
    out
}

/// Excitation/quiescent region membership for one signal, state-level.
#[derive(Clone, Debug)]
pub struct SignalRegions {
    /// Vertices where a rising edge of the signal is enabled (`ER(a+)`).
    pub er_rise: Vec<usize>,
    /// Vertices where a falling edge is enabled (`ER(a−)`).
    pub er_fall: Vec<usize>,
    /// Vertices with the signal at 1 and no falling edge enabled
    /// (`QR(a+)`).
    pub qr_high: Vec<usize>,
    /// Vertices with the signal at 0 and no rising edge enabled
    /// (`QR(a−)`).
    pub qr_low: Vec<usize>,
}

/// Computes the excitation and quiescent regions of `a` (paper Section
/// 5.3).
pub fn signal_regions(stg: &Stg, sg: &StateGraph, a: SignalId) -> SignalRegions {
    let mut r = SignalRegions {
        er_rise: Vec::new(),
        er_fall: Vec::new(),
        qr_high: Vec::new(),
        qr_low: Vec::new(),
    };
    for v in 0..sg.len() {
        let edges = sg.enabled_edges(stg, v);
        let rise = edges.contains(&(a, Polarity::Rise));
        let fall = edges.contains(&(a, Polarity::Fall));
        let value = sg.state(v).code.get(a);
        if rise {
            r.er_rise.push(v);
        }
        if fall {
            r.er_fall.push(v);
        }
        if value && !fall {
            r.qr_high.push(v);
        }
        if !value && !rise {
            r.qr_low.push(v);
        }
    }
    r
}

/// The *contradictory codes* `CONT(a)` of Section 5.3:
/// `(ER(a+) ∩ QR(a−)) ∪ (ER(a−) ∩ QR(a+))`, compared as binary codes.
pub fn contradictory_codes(stg: &Stg, sg: &StateGraph, a: SignalId) -> HashSet<Code> {
    let r = signal_regions(stg, sg, a);
    let codes = |vs: &[usize]| -> HashSet<Code> { vs.iter().map(|&v| sg.state(v).code).collect() };
    let (erp, erm) = (codes(&r.er_rise), codes(&r.er_fall));
    let (qrp, qrm) = (codes(&r.qr_high), codes(&r.qr_low));
    let mut cont: HashSet<Code> = erp.intersection(&qrm).copied().collect();
    cont.extend(erm.intersection(&qrp).copied());
    cont
}

/// `true` if signal `a` satisfies the per-signal CSC condition of Section
/// 5.3 (no contradictory codes).
pub fn csc_holds_for_signal(stg: &Stg, sg: &StateGraph, a: SignalId) -> bool {
    contradictory_codes(stg, sg, a).is_empty()
}

/// Detects *mutually complementary input sequences* for non-input `a`
/// (Def. 3.5(3)) with the paper's frozen-traversal algorithm (Section 5.3):
/// starting from the quiescent contradictory states, traverse backward and
/// then forward firing only input transitions; if an excited contradictory
/// state is reached, the CSC conflict cannot be resolved by inserting
/// non-input signals.
pub fn has_complementary_input_sequences(stg: &Stg, sg: &StateGraph, a: SignalId) -> bool {
    let cont = contradictory_codes(stg, sg, a);
    if cont.is_empty() {
        return false;
    }
    let r = signal_regions(stg, sg, a);
    let quiescent: HashSet<usize> = r.qr_high.iter().chain(&r.qr_low).copied().collect();
    let excited: HashSet<usize> = r.er_rise.iter().chain(&r.er_fall).copied().collect();
    let start: Vec<usize> =
        quiescent.iter().copied().filter(|&v| cont.contains(&sg.state(v).code)).collect();

    let input_labelled = |t: TransId| -> bool {
        stg.label(t).is_some_and(|l| stg.signal_kind(l.signal) == SignalKind::Input)
    };

    // Backward frozen traversal.
    let mut seen: HashSet<usize> = start.iter().copied().collect();
    let mut queue: VecDeque<usize> = start.iter().copied().collect();
    while let Some(v) = queue.pop_front() {
        for &(t, u) in sg.predecessors(v) {
            if input_labelled(t) && seen.insert(u) {
                queue.push_back(u);
            }
        }
    }
    // Forward frozen traversal from everything found so far.
    let mut queue: VecDeque<usize> = seen.iter().copied().collect();
    while let Some(v) = queue.pop_front() {
        for &(t, w) in sg.successors(v) {
            if input_labelled(t) && seen.insert(w) {
                queue.push_back(w);
            }
        }
    }
    seen.iter().any(|&v| excited.contains(&v) && cont.contains(&sg.state(v).code))
}

/// `true` if the (consistent, persistent) state graph is CSC-*reducible*:
/// deterministic, commutative and free from mutually complementary input
/// sequences for every non-input signal (Section 3.4).
pub fn csc_reducible(stg: &Stg, sg: &StateGraph) -> bool {
    determinism_violations(stg, sg).is_empty()
        && commutativity_violations(stg, sg).is_empty()
        && stg.noninput_signals().iter().all(|&a| !has_complementary_input_sequences(stg, sg, a))
}

/// Implementability classes of Def. 2.6, strongest first.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Implementability {
    /// A strongly-equivalent circuit exists (CSC holds).
    Gate,
    /// An I/O-equivalent circuit exists after inserting non-input signals
    /// (CSC-reducible).
    InputOutput,
    /// Only a trace-equivalent circuit with a modified interface exists.
    SpeedIndependent,
    /// Not implementable as a speed-independent circuit at all.
    NotImplementable,
}

impl std::fmt::Display for Implementability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Implementability::Gate => "gate-implementable",
            Implementability::InputOutput => "I/O-implementable",
            Implementability::SpeedIndependent => "SI-implementable (interface change needed)",
            Implementability::NotImplementable => "not implementable",
        };
        write!(f, "{s}")
    }
}

/// Aggregate result of the explicit checks.
#[derive(Clone, Debug)]
pub struct ExplicitReport {
    /// Number of full states (when construction succeeded).
    pub states: usize,
    /// `false` when the net was proved unbounded.
    pub bounded: bool,
    /// `true` when every reachable marking is safe.
    pub safe: bool,
    /// Consistency of the state assignment; `Some` carries the witness.
    pub inconsistency: Option<SgError>,
    /// Signal persistency violations under the chosen policy.
    pub persistency: Vec<PersistencyViolation>,
    /// Determinism violations.
    pub determinism: Vec<DeterminismViolation>,
    /// Commutativity violations.
    pub commutativity: Vec<CommutativityViolation>,
    /// CSC violations (state pairs).
    pub csc: Vec<CscViolation>,
    /// Non-input signals with mutually complementary input sequences.
    pub irreducible_signals: Vec<SignalId>,
    /// Final classification.
    pub verdict: Implementability,
}

impl ExplicitReport {
    /// `true` when the state assignment is consistent.
    pub fn consistent(&self) -> bool {
        self.inconsistency.is_none()
    }

    /// `true` when no (policy-relevant) persistency violation exists.
    pub fn persistent(&self) -> bool {
        self.persistency.is_empty()
    }

    /// `true` when Complete State Coding holds.
    pub fn csc_holds(&self) -> bool {
        self.csc.is_empty()
    }
}

/// Runs every explicit check and classifies the STG per Def. 2.6 /
/// Prop. 3.2.
pub fn check_explicit(stg: &Stg, opts: SgOptions, policy: PersistencyPolicy) -> ExplicitReport {
    let sg = match build_state_graph(stg, opts) {
        Err(e) => {
            let bounded = !matches!(e, SgError::Unbounded);
            return ExplicitReport {
                states: 0,
                bounded,
                safe: false,
                inconsistency: Some(e),
                persistency: Vec::new(),
                determinism: Vec::new(),
                commutativity: Vec::new(),
                csc: Vec::new(),
                irreducible_signals: Vec::new(),
                verdict: Implementability::NotImplementable,
            };
        }
        Ok(sg) => sg,
    };
    let safe = sg.states().iter().all(|s| s.marking.is_safe());
    let persistency = signal_persistency_violations(stg, &sg, policy);
    let determinism = determinism_violations(stg, &sg);
    let commutativity = commutativity_violations(stg, &sg);
    let csc = csc_violations(stg, &sg);
    let irreducible_signals: Vec<SignalId> = stg
        .noninput_signals()
        .into_iter()
        .filter(|&a| has_complementary_input_sequences(stg, &sg, a))
        .collect();
    let reducible =
        determinism.is_empty() && commutativity.is_empty() && irreducible_signals.is_empty();
    let verdict = if !persistency.is_empty() {
        Implementability::NotImplementable
    } else if csc.is_empty() {
        Implementability::Gate
    } else if reducible {
        Implementability::InputOutput
    } else {
        Implementability::SpeedIndependent
    };
    ExplicitReport {
        states: sg.len(),
        bounded: true,
        safe,
        inconsistency: None,
        persistency,
        determinism,
        commutativity,
        csc,
        irreducible_signals,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stg::StgBuilder;

    fn sg_of(stg: &Stg) -> StateGraph {
        build_state_graph(stg, SgOptions::default()).unwrap()
    }

    /// r (input) / a (output) four-phase handshake: fully implementable.
    fn handshake() -> Stg {
        let mut b = StgBuilder::new("hs");
        b.input("r");
        b.output("a");
        b.cycle(&["r+", "a+", "r-", "a-"]);
        b.initial_code_str("00");
        b.build().unwrap()
    }

    #[test]
    fn handshake_is_gate_implementable() {
        let stg = handshake();
        let report = check_explicit(&stg, SgOptions::default(), PersistencyPolicy::default());
        assert!(report.consistent());
        assert!(report.persistent());
        assert!(report.csc_holds());
        assert!(report.safe);
        assert_eq!(report.verdict, Implementability::Gate);
        assert_eq!(report.states, 4);
    }

    /// Output x and input r in free choice: firing x+ (output) disables
    /// r+ (input) — a persistency violation; firing r+ disables x+ — also
    /// a violation (non-input disabled).
    fn output_input_conflict() -> Stg {
        let mut b = StgBuilder::new("conflict");
        b.input("r");
        b.output("x");
        let p = b.place("p", 1);
        b.pt(p, "r+");
        b.pt(p, "x+");
        // Give both somewhere to go so the net stays 1-safe & consistent.
        b.arc("r+", "x-");
        b.arc("x+", "x-");
        b.tp("x-", p);
        b.arc_with_tokens("x-", "r-", 0);
        b.arc("r+", "r-");
        b.initial_code_str("00");
        b.build().unwrap()
    }

    #[test]
    fn detects_persistency_violation() {
        let stg = output_input_conflict();
        let sg = sg_of(&stg);
        let v = signal_persistency_violations(&stg, &sg, PersistencyPolicy::default());
        assert!(!v.is_empty());
        let x = stg.signal_by_name("x").unwrap();
        let r = stg.signal_by_name("r").unwrap();
        let disabled: HashSet<SignalId> = v.iter().map(|p| p.disabled).collect();
        // x+ (non-input) is disabled by r+, and r+ (input) by x+ (output).
        assert!(disabled.contains(&x));
        assert!(disabled.contains(&r));
        // Transition-level conflicts exist as well.
        assert!(!transition_persistency_violations(&stg, &sg).is_empty());
    }

    /// Two outputs guarded by a mutex place: the arbitration policy
    /// decides whether this is a violation.
    #[test]
    fn arbitration_policy_softens_output_conflicts() {
        let mut b = StgBuilder::new("arb");
        b.output("g1");
        b.output("g2");
        let p = b.place("mutex", 1);
        b.pt(p, "g1+");
        b.pt(p, "g2+");
        b.arc("g1+", "g1-");
        b.arc("g2+", "g2-");
        b.tp("g1-", p);
        b.tp("g2-", p);
        b.initial_code_str("00");
        let stg = b.build().unwrap();
        let sg = sg_of(&stg);
        let strict = signal_persistency_violations(&stg, &sg, PersistencyPolicy::default());
        assert!(!strict.is_empty());
        let relaxed =
            signal_persistency_violations(&stg, &sg, PersistencyPolicy { allow_arbitration: true });
        assert!(relaxed.is_empty());
    }

    #[test]
    fn input_choice_is_not_a_violation() {
        // Free choice between two *inputs*: perfectly fine.
        let mut b = StgBuilder::new("choice");
        b.input("i1");
        b.input("i2");
        let p = b.place("p", 1);
        b.pt(p, "i1+");
        b.pt(p, "i2+");
        b.arc("i1+", "i1-");
        b.arc("i2+", "i2-");
        b.tp("i1-", p);
        b.tp("i2-", p);
        b.initial_code_str("00");
        let stg = b.build().unwrap();
        let sg = sg_of(&stg);
        assert!(signal_persistency_violations(&stg, &sg, PersistencyPolicy::default()).is_empty());
    }

    /// Minimal reducible CSC violation, all signals output:
    /// x+ x- y+ x+/2 x-/2 y- (codes 00 and 01 repeat with different
    /// enabled outputs).
    fn reducible_csc() -> Stg {
        let mut b = StgBuilder::new("csc-red");
        b.output("x");
        b.output("y");
        b.cycle(&["x+", "x-", "y+", "x+/2", "x-/2", "y-"]);
        b.initial_code_str("00");
        b.build().unwrap()
    }

    /// Minimal irreducible CSC violation: input a cycles, output b fires
    /// after — the environment's traces alone cannot disambiguate.
    fn irreducible_csc() -> Stg {
        let mut b = StgBuilder::new("csc-irred");
        b.input("a");
        b.output("b");
        b.cycle(&["a+", "a-", "b+", "b-"]);
        b.initial_code_str("00");
        b.build().unwrap()
    }

    #[test]
    fn detects_reducible_csc_violation() {
        let stg = reducible_csc();
        let sg = sg_of(&stg);
        let x = stg.signal_by_name("x").unwrap();
        let y = stg.signal_by_name("y").unwrap();
        assert!(!csc_violations(&stg, &sg).is_empty());
        // Both outputs clash: code 00 is ER(x+) (after y-) and ER(y+)
        // (after x-), and also quiescent for the other signal.
        assert!(!csc_holds_for_signal(&stg, &sg, x));
        assert!(!csc_holds_for_signal(&stg, &sg, y));
        // No signal has complementary *input* sequences (no inputs at all).
        assert!(!has_complementary_input_sequences(&stg, &sg, x));
        assert!(!has_complementary_input_sequences(&stg, &sg, y));
        assert!(csc_reducible(&stg, &sg));
        let report = check_explicit(&stg, SgOptions::default(), PersistencyPolicy::default());
        assert_eq!(report.verdict, Implementability::InputOutput);
    }

    #[test]
    fn detects_irreducible_csc_violation() {
        let stg = irreducible_csc();
        let sg = sg_of(&stg);
        let bsig = stg.signal_by_name("b").unwrap();
        assert!(!csc_violations(&stg, &sg).is_empty());
        assert!(!csc_holds_for_signal(&stg, &sg, bsig));
        assert!(has_complementary_input_sequences(&stg, &sg, bsig));
        assert!(!csc_reducible(&stg, &sg));
        let report = check_explicit(&stg, SgOptions::default(), PersistencyPolicy::default());
        assert_eq!(report.verdict, Implementability::SpeedIndependent);
    }

    #[test]
    fn contradictory_codes_match_expectation() {
        let stg = irreducible_csc();
        let sg = sg_of(&stg);
        let bsig = stg.signal_by_name("b").unwrap();
        let cont = contradictory_codes(&stg, &sg, bsig);
        // The clash is at code 00 (initial vs after a-).
        assert_eq!(cont.len(), 1);
        assert!(cont.contains(&Code::ZERO));
    }

    #[test]
    fn diamond_is_commutative_and_deterministic() {
        // Two concurrent inputs a, b then output c: a clean diamond.
        let mut b = StgBuilder::new("diamond");
        b.input("a");
        b.input("b");
        b.output("c");
        b.arc("a+", "c+");
        b.arc("b+", "c+");
        // Reset phase to keep consistency: c-, then a-, b- concurrently.
        b.arc("c+", "c-");
        b.arc("c-", "a-");
        b.arc("c-", "b-");
        b.marked_arc("a-", "a+");
        b.marked_arc("b-", "b+");
        b.initial_code_str("000");
        let stg = b.build().unwrap();
        let sg = sg_of(&stg);
        assert!(determinism_violations(&stg, &sg).is_empty());
        assert!(commutativity_violations(&stg, &sg).is_empty());
    }

    #[test]
    fn detects_nondeterminism() {
        // Two transitions labelled a+ from the same place to different
        // places: non-deterministic.
        let mut b = StgBuilder::new("nondet");
        b.input("a");
        let p = b.place("p", 1);
        b.pt(p, "a+");
        b.pt(p, "a+/2");
        b.arc("a+", "a-");
        b.arc("a+/2", "a-/2");
        b.tp("a-", p);
        b.tp("a-/2", p);
        b.initial_code_str("0");
        let stg = b.build().unwrap();
        let sg = sg_of(&stg);
        let dv = determinism_violations(&stg, &sg);
        assert!(!dv.is_empty());
        assert_eq!(dv[0].edge.1, Polarity::Rise);
    }

    #[test]
    fn report_on_inconsistent_stg() {
        let mut b = StgBuilder::new("bad");
        b.input("b");
        b.input("a");
        let start = b.place("start", 1);
        b.pt(start, "b+");
        b.seq(&["b+", "a+", "b+/2"]);
        b.initial_code_str("00");
        let stg = b.build().unwrap();
        let report = check_explicit(&stg, SgOptions::default(), PersistencyPolicy::default());
        assert!(!report.consistent());
        assert_eq!(report.verdict, Implementability::NotImplementable);
        assert!(report.bounded);
    }

    #[test]
    fn signal_regions_partition_states() {
        let stg = handshake();
        let sg = sg_of(&stg);
        let a = stg.signal_by_name("a").unwrap();
        let r = signal_regions(&stg, &sg, a);
        // Each of the 4 states falls in exactly one region of `a`.
        let total = r.er_rise.len() + r.er_fall.len() + r.qr_high.len() + r.qr_low.len();
        assert_eq!(total, 4);
        assert_eq!(r.er_rise.len(), 1);
        assert_eq!(r.er_fall.len(), 1);
    }
}
