//! Explicit state-graph construction — the *full state graph* of the paper
//! (Section 3): vertices are `(marking, code)` pairs, so one marking may
//! yield several states and vice versa.
//!
//! This is the classic explicit-enumeration technique the paper's symbolic
//! traversal replaces; `stgcheck` keeps it as a baseline for the
//! experimental comparison and as a differential-test oracle.

use std::collections::HashMap;
use std::fmt;

use stgcheck_petri::{Marking, TransId};

use crate::signal::{Polarity, SignalId};
use crate::stg::{Code, Stg};

/// Options for explicit state-graph construction.
#[derive(Copy, Clone, Debug)]
pub struct SgOptions {
    /// Abort after this many full states.
    pub max_states: usize,
}

impl Default for SgOptions {
    fn default() -> Self {
        SgOptions { max_states: 2_000_000 }
    }
}

/// Why explicit state-graph construction failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SgError {
    /// The ancestor-cover test proved the underlying net unbounded.
    Unbounded,
    /// State limit exceeded.
    LimitExceeded(usize),
    /// A state assignment inconsistency (Def. 3.1): the transition fired
    /// from the state would set a signal to a value it already has.
    Inconsistent {
        /// Code of the offending state.
        code: Code,
        /// Index of the signal whose assignment is inconsistent.
        signal: SignalId,
        /// The polarity the offending transition is labelled with.
        polarity: Polarity,
    },
    /// No initial code was supplied and inference failed because the signal
    /// has both a rising and a falling first edge on different paths.
    AmbiguousInitialValue(SignalId),
}

impl fmt::Display for SgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgError::Unbounded => write!(f, "underlying Petri net is unbounded"),
            SgError::LimitExceeded(n) => write!(f, "state limit of {n} exceeded"),
            SgError::Inconsistent { code, signal, polarity } => write!(
                f,
                "inconsistent state assignment: signal #{} fires `{polarity}` from code {:#b}",
                signal.index(),
                code.0
            ),
            SgError::AmbiguousInitialValue(s) => {
                write!(f, "cannot infer initial value of signal #{}", s.index())
            }
        }
    }
}

impl std::error::Error for SgError {}

/// A full state: marking plus binary signal code.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FullState {
    /// The Petri-net marking component.
    pub marking: Marking,
    /// The signal-value component.
    pub code: Code,
}

/// The explicit full state graph of an STG.
#[derive(Clone, Debug)]
pub struct StateGraph {
    states: Vec<FullState>,
    /// `edges[v]` lists `(t, target)`.
    edges: Vec<Vec<(TransId, usize)>>,
    /// Reverse adjacency: `(t, source)` per target.
    redges: Vec<Vec<(TransId, usize)>>,
    index: HashMap<FullState, usize>,
}

impl StateGraph {
    /// Number of full states. This is the "# of states" column of the
    /// paper's Table 1.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the graph has no states (never produced by construction).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of vertex `v` (vertex 0 is initial).
    pub fn state(&self, v: usize) -> &FullState {
        &self.states[v]
    }

    /// All states, indexed by vertex.
    pub fn states(&self) -> &[FullState] {
        &self.states
    }

    /// Outgoing edges of `v` as `(transition, target)`.
    pub fn successors(&self, v: usize) -> &[(TransId, usize)] {
        &self.edges[v]
    }

    /// Incoming edges of `v` as `(transition, source)`.
    pub fn predecessors(&self, v: usize) -> &[(TransId, usize)] {
        &self.redges[v]
    }

    /// Vertex of a full state, if reachable.
    pub fn vertex_of(&self, s: &FullState) -> Option<usize> {
        self.index.get(s).copied()
    }

    /// Total edge count.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Distinct binary codes and the vertices sharing each code.
    pub fn states_by_code(&self) -> HashMap<Code, Vec<usize>> {
        let mut map: HashMap<Code, Vec<usize>> = HashMap::new();
        for (v, s) in self.states.iter().enumerate() {
            map.entry(s.code).or_default().push(v);
        }
        map
    }

    /// Signals enabled at vertex `v` (a signal is enabled when one of its
    /// transitions is; dummies contribute nothing).
    pub fn enabled_signals(&self, stg: &Stg, v: usize) -> Vec<SignalId> {
        let mut out: Vec<SignalId> =
            self.edges[v].iter().filter_map(|&(t, _)| stg.label(t).map(|l| l.signal)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Non-input signals enabled at vertex `v` — the set CSC compares
    /// between equally-coded states (Def. 3.4).
    pub fn enabled_noninput_signals(&self, stg: &Stg, v: usize) -> Vec<SignalId> {
        self.enabled_signals(stg, v)
            .into_iter()
            .filter(|&s| stg.signal_kind(s).is_noninput())
            .collect()
    }

    /// Signal edges (signal, polarity) enabled at `v`, deduplicated across
    /// instances.
    pub fn enabled_edges(&self, stg: &Stg, v: usize) -> Vec<(SignalId, Polarity)> {
        let mut out: Vec<(SignalId, Polarity)> = self.edges[v]
            .iter()
            .filter_map(|&(t, _)| stg.label(t).map(|l| (l.signal, l.polarity)))
            .collect();
        out.sort_by_key(|&(s, p)| (s, matches!(p, Polarity::Fall)));
        out.dedup();
        out
    }
}

/// Infers the initial value of every signal using the paper's "don't care"
/// technique (Section 5.1): a signal's value is constant until its first
/// edge fires, so explore the markings reachable *without firing any edge
/// of that signal* and read off the polarity of the first enabled edge.
///
/// Signals that never fire default to `0`.
///
/// # Errors
///
/// [`SgError::AmbiguousInitialValue`] if both polarities are enabled in the
/// frozen subspace (the STG is then necessarily inconsistent), or the
/// exploration limits from `opts` are hit.
pub fn infer_initial_code(stg: &Stg, opts: SgOptions) -> Result<Code, SgError> {
    let net = stg.net();
    let mut code = Code::ZERO;
    for s in stg.signals() {
        // BFS over markings, never firing an edge of `s`.
        let m0 = net.initial_marking();
        let mut seen: HashMap<Marking, ()> = HashMap::from([(m0.clone(), ())]);
        let mut queue = vec![m0];
        let mut saw_rise = false;
        let mut saw_fall = false;
        while let Some(m) = queue.pop() {
            for t in net.transitions() {
                let label = stg.label(t);
                if !net.is_enabled(t, &m) {
                    continue;
                }
                if let Some(l) = label {
                    if l.signal == s {
                        match l.polarity {
                            Polarity::Rise => saw_rise = true,
                            Polarity::Fall => saw_fall = true,
                        }
                        continue; // frozen: do not fire
                    }
                }
                let next = net.fire(t, &m);
                if !next.is_safe() && next.max_tokens() > 8 {
                    return Err(SgError::Unbounded);
                }
                if seen.len() >= opts.max_states {
                    return Err(SgError::LimitExceeded(opts.max_states));
                }
                if !seen.contains_key(&next) {
                    seen.insert(next.clone(), ());
                    queue.push(next);
                }
            }
        }
        match (saw_rise, saw_fall) {
            (true, true) => return Err(SgError::AmbiguousInitialValue(s)),
            (true, false) => code = code.with(s, false),
            (false, true) => code = code.with(s, true),
            (false, false) => code = code.with(s, false),
        }
    }
    Ok(code)
}

/// Builds the explicit full state graph of `stg`.
///
/// Uses the supplied initial code or infers one (see
/// [`infer_initial_code`]). Construction fails on the first consistency
/// violation — an inconsistent STG has no meaningful binary interpretation
/// beyond that point (Def. 3.1).
///
/// # Errors
///
/// See [`SgError`].
pub fn build_state_graph(stg: &Stg, opts: SgOptions) -> Result<StateGraph, SgError> {
    let net = stg.net();
    let code0 = match stg.initial_code() {
        Some(c) => c,
        None => infer_initial_code(stg, opts)?,
    };
    let init = FullState { marking: net.initial_marking(), code: code0 };
    let mut graph = StateGraph {
        states: vec![init.clone()],
        edges: vec![Vec::new()],
        redges: vec![Vec::new()],
        index: HashMap::from([(init, 0usize)]),
    };
    let mut parent: Vec<Option<usize>> = vec![None];
    let mut frontier = vec![0usize];
    while let Some(v) = frontier.pop() {
        let FullState { marking, code } = graph.states[v].clone();
        for t in net.transitions() {
            let Some(next_marking) = net.try_fire(t, &marking) else { continue };
            let next_code = match stg.label(t) {
                None => code,
                Some(l) => {
                    if code.get(l.signal) != l.polarity.value_before() {
                        return Err(SgError::Inconsistent {
                            code,
                            signal: l.signal,
                            polarity: l.polarity,
                        });
                    }
                    code.with(l.signal, l.polarity.value_after())
                }
            };
            let next = FullState { marking: next_marking, code: next_code };
            let target = match graph.index.get(&next) {
                Some(&w) => w,
                None => {
                    // Ancestor-cover unboundedness test on the marking part.
                    let mut anc = Some(v);
                    while let Some(a) = anc {
                        let am = &graph.states[a].marking;
                        if am.is_covered_by(&next.marking) && *am != next.marking {
                            return Err(SgError::Unbounded);
                        }
                        anc = parent[a];
                    }
                    if graph.states.len() >= opts.max_states {
                        return Err(SgError::LimitExceeded(opts.max_states));
                    }
                    let w = graph.states.len();
                    graph.states.push(next.clone());
                    graph.edges.push(Vec::new());
                    graph.redges.push(Vec::new());
                    graph.index.insert(next, w);
                    parent.push(Some(v));
                    frontier.push(w);
                    w
                }
            };
            graph.edges[v].push((t, target));
            graph.redges[target].push((t, v));
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stg::StgBuilder;

    fn handshake() -> Stg {
        let mut b = StgBuilder::new("hs");
        b.input("r");
        b.output("a");
        b.cycle(&["r+", "a+", "r-", "a-"]);
        b.initial_code_str("00");
        b.build().unwrap()
    }

    #[test]
    fn handshake_state_graph() {
        let stg = handshake();
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        assert_eq!(sg.len(), 4);
        assert_eq!(sg.num_edges(), 4);
        // Codes around the cycle: 00 -> 10 -> 11 -> 01 -> 00.
        let codes: Vec<String> = sg.states().iter().map(|s| s.code.to_bit_string(2)).collect();
        assert!(codes.contains(&"00".to_string()));
        assert!(codes.contains(&"10".to_string()));
        assert!(codes.contains(&"11".to_string()));
        assert!(codes.contains(&"01".to_string()));
        // Every code is unique here.
        assert_eq!(sg.states_by_code().len(), 4);
        // Predecessors mirror successors.
        for v in 0..sg.len() {
            for &(t, w) in sg.successors(v) {
                assert!(sg.predecessors(w).contains(&(t, v)));
            }
        }
    }

    #[test]
    fn enabled_signal_queries() {
        let stg = handshake();
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        let r = stg.signal_by_name("r").unwrap();
        let a = stg.signal_by_name("a").unwrap();
        // Initial state enables only r+.
        assert_eq!(sg.enabled_signals(&stg, 0), vec![r]);
        assert_eq!(sg.enabled_noninput_signals(&stg, 0), Vec::<SignalId>::new());
        assert_eq!(sg.enabled_edges(&stg, 0), vec![(r, Polarity::Rise)]);
        // After r+, only a+ is enabled.
        let (_, v1) = sg.successors(0)[0];
        assert_eq!(sg.enabled_noninput_signals(&stg, v1), vec![a]);
    }

    #[test]
    fn detects_inconsistency() {
        // b+ ; a+ ; b+/2 — the paper's Section 3.1 example.
        let mut b = StgBuilder::new("bad");
        b.input("b");
        b.input("a");
        let start = b.place("start", 1);
        b.pt(start, "b+");
        b.seq(&["b+", "a+", "b+/2"]);
        b.initial_code_str("00");
        let stg = b.build().unwrap();
        let err = build_state_graph(&stg, SgOptions::default()).unwrap_err();
        match err {
            SgError::Inconsistent { signal, polarity, .. } => {
                assert_eq!(signal, stg.signal_by_name("b").unwrap());
                assert_eq!(polarity, Polarity::Rise);
            }
            other => panic!("expected inconsistency, got {other:?}"),
        }
    }

    #[test]
    fn infers_initial_code() {
        let mut b = StgBuilder::new("hs");
        b.input("r");
        b.output("a");
        b.cycle(&["r+", "a+", "r-", "a-"]);
        // No initial code given.
        let stg = b.build().unwrap();
        let code = infer_initial_code(&stg, SgOptions::default()).unwrap();
        assert_eq!(code, Code::ZERO);
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        assert_eq!(sg.len(), 4);
    }

    #[test]
    fn infers_nonzero_initial_code() {
        // Cycle starting with a falling edge: r starts at 1.
        let mut b = StgBuilder::new("hs");
        b.input("r");
        b.output("a");
        b.cycle(&["r-", "a+", "r+", "a-"]);
        let stg = b.build().unwrap();
        let code = infer_initial_code(&stg, SgOptions::default()).unwrap();
        let r = stg.signal_by_name("r").unwrap();
        let a = stg.signal_by_name("a").unwrap();
        assert!(code.get(r));
        assert!(!code.get(a));
    }

    #[test]
    fn state_limit_respected() {
        let stg = handshake();
        let err = build_state_graph(&stg, SgOptions { max_states: 2 }).unwrap_err();
        assert_eq!(err, SgError::LimitExceeded(2));
    }

    #[test]
    fn one_marking_many_codes() {
        // Two rounds of r+/r- through the same places with an observer o
        // that rises once: after o+, the same marking recurs with a
        // different o value — full states must distinguish them.
        let mut b = StgBuilder::new("m");
        b.input("r");
        b.output("o");
        b.cycle(&["r+", "o+", "r-", "o-"]);
        b.initial_code_str("00");
        let stg = b.build().unwrap();
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        // 4 full states over 4 markings here (sanity: graph closed).
        assert_eq!(sg.len(), 4);
        for v in 0..sg.len() {
            assert_eq!(sg.successors(v).len(), 1);
        }
    }
}
