//! Liveness analysis on the explicit state graph: strongly connected
//! components, dead transitions, transition liveness and home states.
//!
//! The paper requires *finite* behaviour (boundedness); specifications are
//! usually also expected to be live (every transition remains fireable)
//! and reversible enough to have home states. These diagnostics catch
//! specification bugs that the implementability conditions alone do not
//! (a dead output transition vacuously passes every CSC check).

use stgcheck_petri::TransId;

use crate::state_graph::StateGraph;
use crate::stg::Stg;

/// SCC decomposition of a state graph.
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    /// Component id per vertex (0-based, reverse topological order:
    /// component 0 has no outgoing inter-component edges... ids follow
    /// Tarjan completion order).
    pub component: Vec<usize>,
    /// Number of components.
    pub count: usize,
    /// Components with no outgoing edges to other components
    /// (terminal/bottom SCCs).
    pub terminal: Vec<usize>,
}

/// Computes the strongly connected components of the state graph with an
/// iterative Tarjan algorithm.
pub fn sccs(sg: &StateGraph) -> SccDecomposition {
    let n = sg.len();
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNSEEN; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_count = 0usize;

    // Iterative DFS frames: (vertex, next-edge-position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos < sg.successors(v).len() {
                let (_, w) = sg.successors(v)[*pos];
                *pos += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    // v is an SCC root: pop its members.
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w] = false;
                        component[w] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }

    // Terminal components: no edge leaving the component.
    let mut has_exit = vec![false; comp_count];
    for v in 0..n {
        for &(_, w) in sg.successors(v) {
            if component[v] != component[w] {
                has_exit[component[v]] = true;
            }
        }
    }
    let terminal = (0..comp_count).filter(|&c| !has_exit[c]).collect();
    SccDecomposition { component, count: comp_count, terminal }
}

/// Transitions that never fire anywhere in the state graph.
pub fn dead_transitions(stg: &Stg, sg: &StateGraph) -> Vec<TransId> {
    let mut fires = vec![false; stg.net().num_transitions()];
    for v in 0..sg.len() {
        for &(t, _) in sg.successors(v) {
            fires[t.index()] = true;
        }
    }
    stg.net().transitions().filter(|t| !fires[t.index()]).collect()
}

/// Transitions that are *live*: fireable again from every reachable state.
/// A transition is live iff every terminal SCC contains an edge labelled
/// with it. Returns the non-live transitions (dead ones included).
pub fn non_live_transitions(stg: &Stg, sg: &StateGraph) -> Vec<TransId> {
    let scc = sccs(sg);
    let nt = stg.net().num_transitions();
    // fires_in[c] = bitset of transitions firing inside component c.
    let mut fires_in: Vec<Vec<bool>> = vec![vec![false; nt]; scc.count];
    for v in 0..sg.len() {
        for &(t, w) in sg.successors(v) {
            if scc.component[v] == scc.component[w] {
                fires_in[scc.component[v]][t.index()] = true;
            }
        }
    }
    stg.net()
        .transitions()
        .filter(|t| !scc.terminal.iter().all(|&c| fires_in[c][t.index()]))
        .collect()
}

/// Home states: states reachable from every reachable state. Non-empty
/// iff the graph has exactly one terminal SCC, and then equal to it.
pub fn home_states(sg: &StateGraph) -> Vec<usize> {
    let scc = sccs(sg);
    if scc.terminal.len() != 1 {
        return Vec::new();
    }
    let home = scc.terminal[0];
    (0..sg.len()).filter(|&v| scc.component[v] == home).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::state_graph::{build_state_graph, SgOptions};
    use crate::stg::StgBuilder;

    fn sg_of(stg: &Stg) -> StateGraph {
        build_state_graph(stg, SgOptions::default()).unwrap()
    }

    #[test]
    fn cyclic_benchmarks_are_live_with_all_home_states() {
        for stg in [gen::mutex_element(), gen::muller_pipeline(4), gen::vme_read()] {
            let sg = sg_of(&stg);
            let scc = sccs(&sg);
            // Fully reversible: one component containing everything.
            assert_eq!(scc.count, 1, "{}", stg.name());
            assert_eq!(scc.terminal.len(), 1);
            assert!(dead_transitions(&stg, &sg).is_empty(), "{}", stg.name());
            assert!(non_live_transitions(&stg, &sg).is_empty(), "{}", stg.name());
            assert_eq!(home_states(&sg).len(), sg.len(), "{}", stg.name());
        }
    }

    #[test]
    fn oneshot_spec_has_dead_tail() {
        // r+ ; a+ and then nothing: no transition is live, the dead state
        // is the single home state.
        let mut b = StgBuilder::new("oneshot");
        b.input("r");
        b.output("a");
        let p = b.place("p", 1);
        b.pt(p, "r+");
        b.arc("r+", "a+");
        b.initial_code_str("00");
        let stg = b.build().unwrap();
        let sg = sg_of(&stg);
        assert_eq!(sg.len(), 3);
        let scc = sccs(&sg);
        assert_eq!(scc.count, 3, "a chain of singleton components");
        assert_eq!(scc.terminal.len(), 1);
        assert!(dead_transitions(&stg, &sg).is_empty(), "both fire once");
        assert_eq!(non_live_transitions(&stg, &sg).len(), 2, "neither fires forever");
        assert_eq!(home_states(&sg).len(), 1);
    }

    #[test]
    fn never_enabled_transition_is_dead() {
        let mut b = StgBuilder::new("dead");
        b.input("r");
        b.output("x");
        b.cycle(&["r+", "r-"]);
        let tomb = b.place("tomb", 0);
        b.pt(tomb, "x+");
        b.initial_code_str("00");
        let stg = b.build().unwrap();
        let sg = sg_of(&stg);
        let dead = dead_transitions(&stg, &sg);
        assert_eq!(dead.len(), 1);
        assert_eq!(stg.label_string(dead[0]), "x+");
        // Dead implies non-live.
        assert!(non_live_transitions(&stg, &sg).contains(&dead[0]));
        // The r-cycle itself is live and a home component.
        assert_eq!(home_states(&sg).len(), sg.len());
    }

    #[test]
    fn choice_with_two_terminal_branches_has_no_home_states() {
        // A one-shot choice between two dead-end branches.
        let mut b = StgBuilder::new("fork");
        b.input("u");
        b.input("v");
        let p = b.place("p", 1);
        b.pt(p, "u+");
        b.pt(p, "v+");
        b.initial_code_str("00");
        let stg = b.build().unwrap();
        let sg = sg_of(&stg);
        let scc = sccs(&sg);
        assert_eq!(scc.terminal.len(), 2);
        assert!(home_states(&sg).is_empty());
    }

    #[test]
    fn agrees_with_symbolic_dead_transition_check() {
        // The explicit dead-transition list must match the symbolic one
        // (exercised further in stgcheck-core's tests; here: sanity on a
        // live net).
        let stg = gen::master_read(2);
        let sg = sg_of(&stg);
        assert!(dead_transitions(&stg, &sg).is_empty());
    }
}
