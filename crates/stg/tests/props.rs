//! Property-based tests of the STG layer: parser round-trips, state-graph
//! laws and check coherence on randomly composed handshake networks.

use proptest::prelude::*;
use stgcheck_stg::{
    build_state_graph, check_explicit, csc_violations, parse_g, write_g, PersistencyPolicy,
    SgOptions, Stg, StgBuilder,
};

/// Random network of four-phase handshakes with optional sequencing
/// between channels: always safe, consistent and persistent by
/// construction.
fn arb_handshake_net() -> impl Strategy<Value = Stg> {
    (1usize..5, proptest::collection::vec((0usize..5, 0usize..5), 0..4), any::<bool>()).prop_map(
        |(n, links, first_input)| {
            let mut b = StgBuilder::new("random-hs");
            for i in 0..n {
                if (i == 0) == first_input {
                    b.input(&format!("r{i}"));
                } else {
                    b.output(&format!("r{i}"));
                }
            }
            for i in 0..n {
                let plus = format!("r{i}+");
                let minus = format!("r{i}-");
                b.arc(&plus, &minus);
                b.marked_arc(&minus, &plus);
            }
            // Sequencing links: rj+ may only fire between ri+ and ri-
            // firings (a 1-token shuttle between the two signals).
            let mut seen_links = std::collections::HashSet::new();
            for (a, bidx) in links {
                let (a, bidx) = (a % n, bidx % n);
                if a == bidx || !seen_links.insert((a, bidx)) || seen_links.contains(&(bidx, a)) {
                    continue;
                }
                let from = format!("r{a}+");
                let to = format!("r{bidx}+");
                b.arc(&from, &to);
                b.marked_arc(&to, &from);
            }
            b.initial_code_str(&"0".repeat(n));
            b.build().expect("construction is well-formed")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The .g writer/parser round-trips every generated STG.
    #[test]
    fn g_format_round_trips(stg in arb_handshake_net()) {
        let text = write_g(&stg);
        let back = parse_g(&text).expect("writer output parses");
        prop_assert_eq!(back.num_signals(), stg.num_signals());
        prop_assert_eq!(back.net().num_places(), stg.net().num_places());
        prop_assert_eq!(back.net().num_transitions(), stg.net().num_transitions());
        let sg1 = build_state_graph(&stg, SgOptions::default()).unwrap();
        let sg2 = build_state_graph(&back, SgOptions::default()).unwrap();
        prop_assert_eq!(sg1.len(), sg2.len());
        prop_assert_eq!(sg1.num_edges(), sg2.num_edges());
    }

    /// State-graph structural laws: predecessors mirror successors; every
    /// edge's code update matches its label.
    #[test]
    fn state_graph_laws(stg in arb_handshake_net()) {
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        for v in 0..sg.len() {
            for &(t, w) in sg.successors(v) {
                prop_assert!(sg.predecessors(w).contains(&(t, v)));
                let (cv, cw) = (sg.state(v).code, sg.state(w).code);
                match stg.label(t) {
                    None => prop_assert_eq!(cv, cw),
                    Some(l) => {
                        prop_assert_eq!(cv.get(l.signal), l.polarity.value_before());
                        prop_assert_eq!(cw.get(l.signal), l.polarity.value_after());
                        prop_assert_eq!(cv.with(l.signal, l.polarity.value_after()), cw);
                    }
                }
            }
        }
    }

    /// Handshake networks are consistent, safe and persistent by
    /// construction; CSC violations, when any, are symmetric in the pair.
    #[test]
    fn handshake_nets_are_well_behaved(stg in arb_handshake_net()) {
        let report =
            check_explicit(&stg, SgOptions::default(), PersistencyPolicy::default());
        prop_assert!(report.consistent());
        prop_assert!(report.safe);
        prop_assert!(report.persistent());
        // CSC pairs are reported in canonical order without duplicates.
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        let viol = csc_violations(&stg, &sg);
        for w in viol.windows(2) {
            prop_assert!(w[0].state_a <= w[1].state_a);
        }
        for v in &viol {
            prop_assert!(v.state_a < v.state_b);
            prop_assert_eq!(sg.state(v.state_a).code, v.code);
            prop_assert_eq!(sg.state(v.state_b).code, v.code);
        }
    }

    /// Initial-code inference agrees with the declared code on nets whose
    /// first edges are rising.
    #[test]
    fn inference_recovers_declared_code(stg in arb_handshake_net()) {
        let declared = stg.initial_code().unwrap();
        let inferred =
            stgcheck_stg::infer_initial_code(&stg, SgOptions::default()).unwrap();
        prop_assert_eq!(declared, inferred);
    }
}
