.model muller-4
.inputs c0
.outputs c1 c2 c3
.graph
c0+ c1+
c1+ c0-
c0- c1-
c1- c0+
c1+ c2+
c2+ c1-
c1- c2-
c2- c1+
c2+ c3+
c3+ c2-
c2- c3-
c3- c2+
.marking { <c1-,c0+> <c2-,c1+> <c3-,c2+> }
.end
