# Parallel-composition controller ("par"): one master four-phase
# handshake (r/a) forked into two concurrent slave handshakes
# (r1/a1, r2/a2) with a C-element-style join on both phases — the
# standard parallelizer component of the petrify documentation and
# handshake-circuit literature. Transcribed by hand; see
# benchmarks/README.md.
.model par-join
.inputs r a1 a2
.outputs a r1 r2
.graph
r+ r1+ r2+
r1+ a1+
r2+ a2+
a1+ a+
a2+ a+
a+ r-
r- r1- r2-
r1- a1-
r2- a2-
a1- a-
a2- a-
a- r+
.marking { <a-,r+> }
.end
