.model par-hs-6
.inputs r1 r2 r3 r4 r5 r6
.outputs a1 a2 a3 a4 a5 a6
.graph
r1+ a1+
a1+ r1-
r1- a1-
a1- r1+
r2+ a2+
a2+ r2-
r2- a2-
a2- r2+
r3+ a3+
a3+ r3-
r3- a3-
a3- r3+
r4+ a4+
a4+ r4-
r4- a4-
a4- r4+
r5+ a5+
a5+ r5-
r5- a5-
a5- r5+
r6+ a6+
a6+ r6-
r6- a6-
a6- r6+
.marking { <a1-,r1+> <a2-,r2+> <a3-,r3+> <a4-,r4+> <a5-,r5+> <a6-,r6+> }
.end
