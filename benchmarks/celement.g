# Muller C-element specification — the canonical STG from the SIS/petrify
# async benchmark corpora (there as celement/chu-style specs): the output
# c rises only after both inputs a and b have risen, and falls only after
# both have fallen. Transcribed by hand; see benchmarks/README.md.
.model celement
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
