.model muller-8
.inputs c0
.outputs c1 c2 c3 c4 c5 c6 c7
.graph
c0+ c1+
c1+ c0-
c0- c1-
c1- c0+
c1+ c2+
c2+ c1-
c1- c2-
c2- c1+
c2+ c3+
c3+ c2-
c2- c3-
c3- c2+
c3+ c4+
c4+ c3-
c3- c4-
c4- c3+
c4+ c5+
c5+ c4-
c4- c5-
c5- c4+
c5+ c6+
c6+ c5-
c5- c6-
c6- c5+
c6+ c7+
c7+ c6-
c6- c7-
c7- c6+
.marking { <c1-,c0+> <c2-,c1+> <c3-,c2+> <c4-,c3+> <c5-,c4+> <c6-,c5+> <c7-,c6+> }
.end
