# Simple (fully-coupled) four-phase latch controller, after Furber & Day,
# "Four-Phase Micropipeline Latch Control Circuits" (IEEE TVLSI 1996):
# the input handshake (Rin/Ain) and output handshake (Rout/Aout) are tied
# into one sequential cycle — the "simple" controller trades all
# concurrency for minimal logic. Latch-enable edges omitted; see
# benchmarks/README.md for provenance.
.model fd-latch-simple
.inputs Rin Aout
.outputs Ain Rout
.graph
Rin+ Rout+
Rout+ Aout+
Aout+ Ain+
Ain+ Rin-
Rin- Rout-
Rout- Aout-
Aout- Ain-
Ain- Rin+
.marking { <Ain-,Rin+> }
.end
