.model mutex-3
.inputs r1 r2 r3
.outputs a1 a2 a3
.graph
a1- m
a2- m
a3- m
m a1+
m a2+
m a3+
a1- idle1
idle1 r1+
r1+ req1
req1 a1+
a1+ grant1
grant1 r1-
r1- done1
done1 a1-
a2- idle2
idle2 r2+
r2+ req2
req2 a2+
a2+ grant2
grant2 r2-
r2- done2
done2 a2-
a3- idle3
idle3 r3+
r3+ req3
req3 a3+
a3+ grant3
grant3 r3-
r3- done3
done3 a3-
.marking { m idle1 idle2 idle3 }
.end
