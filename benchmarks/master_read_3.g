.model master-read-3
.inputs req a1 a2 a3
.outputs ack r1 r2 r3
.graph
req+ r1+
r1+ a1+
a1+ ack+
req- r1-
r1- a1-
a1- ack-
req+ r2+
r2+ a2+
a2+ ack+
req- r2-
r2- a2-
a2- ack-
req+ r3+
r3+ a3+
a3+ ack+
req- r3-
r3- a3-
a3- ack-
ack+ req-
ack- req+
.marking { <ack-,req+> }
.end
