.model master-read-2
.inputs req a1 a2
.outputs ack r1 r2
.graph
req+ r1+
r1+ a1+
a1+ ack+
req- r1-
r1- a1-
a1- ack-
req+ r2+
r2+ a2+
a2+ ack+
req- r2-
r2- a2-
a2- ack-
ack+ req-
ack- req+
.marking { <ack-,req+> }
.end
