//! Complete State Coding analysis in depth: the VME bus controller read
//! cycle (the textbook *reducible* CSC conflict) versus a minimal
//! *irreducible* one.
//!
//! Shows the excitation/quiescent region machinery of Section 5.3 of the
//! paper: the contradictory codes `CONT(a)`, the violation witnesses, and
//! the frozen-input traversal that separates conflicts solvable by signal
//! insertion (I/O-implementable) from those that require an interface
//! change (only SI-implementable).
//!
//! Run with: `cargo run --example csc_violation`

use stgcheck::core::{SymbolicStg, TraversalStrategy, VarOrder};
use stgcheck::stg::gen;
use stgcheck::stg::Stg;

fn analyse(stg: &Stg) {
    println!("== {} ==", stg.name());
    println!(
        "  inputs:  {}",
        stg.input_signals().iter().map(|&s| stg.signal_name(s)).collect::<Vec<_>>().join(" ")
    );
    println!(
        "  outputs: {}",
        stg.noninput_signals().iter().map(|&s| stg.signal_name(s)).collect::<Vec<_>>().join(" ")
    );

    let mut sym = SymbolicStg::new(stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().expect("consistent fixture");
    let traversal = sym.traverse(code, TraversalStrategy::Chained);
    println!("  reachable full states: {}", traversal.stats.num_states);

    for analysis in sym.check_csc(traversal.reached) {
        let name = stg.signal_name(analysis.signal);
        if analysis.holds {
            println!("  CSC({name}): ok");
            continue;
        }
        let witness = analysis.witness.as_ref().expect("violated CSC carries a witness");
        println!("  CSC({name}): VIOLATED — contradictory code {}", witness.code);
        let irreducible = sym.has_complementary_input_sequences(
            traversal.reached,
            analysis.signal,
            analysis.contradictory,
        );
        if irreducible {
            println!(
                "    irreducible: mutually complementary input sequences exist;\n\
                 \x20   no insertion of internal signals can fix this interface"
            );
        } else {
            println!(
                "    reducible: an internal signal (as petrify's csc0) can\n\
                 \x20   disambiguate the conflicting states"
            );
        }
    }
    println!();
}

fn main() {
    // The classic: VME bus controller read cycle. Reducible.
    analyse(&gen::vme_read());
    // All-output conflict: reducible as well.
    analyse(&gen::csc_violation_stg());
    // Input-burst conflict: irreducible — the environment's traces alone
    // cannot tell the two states apart.
    analyse(&gen::irreducible_csc_stg());
}
