//! Fake conflicts (Sections 3.5 and 5.4): the paper's Fig. 3 pair of
//! specifications D1/D2 and the role of fake-freedom as a cheap
//! commutativity check.
//!
//! D1 specifies a choice between `a+` and `b+` where each branch
//! re-enables the other signal — a *symmetric fake conflict*. D2 specifies
//! the same behaviour as genuine concurrency. Both induce the *same state
//! graph*, but the paper's tool rejects D1 as ill-formed and accepts D2.
//!
//! Run with: `cargo run --example fake_conflicts`

use stgcheck::core::{verify, SymbolicStg, TraversalStrategy, VarOrder, VerifyOptions};
use stgcheck::stg::gen;
use stgcheck::stg::{build_state_graph, SgOptions, Stg};

fn show(stg: &Stg) {
    println!("== {} ==", stg.name());
    let sg = build_state_graph(stg, SgOptions::default()).expect("bounded & consistent");
    println!("  explicit state graph: {} states, {} edges", sg.len(), sg.num_edges());

    let mut sym = SymbolicStg::new(stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().expect("fixture has a code");
    let traversal = sym.traverse(code, TraversalStrategy::Chained);
    let r_n = sym.project_markings(traversal.reached);

    let conflicts = sym.check_fake_conflicts(r_n);
    if conflicts.is_empty() {
        println!("  no direct conflicts at all (pure concurrency)");
    }
    for fc in &conflicts {
        let net = stg.net();
        println!(
            "  conflict {} vs {}: co-enabled={} fake({}←{})={} fake({}←{})={}",
            net.trans_name(fc.t1),
            net.trans_name(fc.t2),
            fc.co_enabled,
            net.trans_name(fc.t1),
            net.trans_name(fc.t2),
            fc.fake_1_by_2,
            net.trans_name(fc.t2),
            net.trans_name(fc.t1),
            fc.fake_2_by_1,
        );
        if fc.is_symmetric_fake() {
            println!("    => symmetric fake: should be rewritten as concurrency (like D2)");
        } else if fc.is_asymmetric_fake() {
            println!("    => asymmetric fake");
        } else if fc.co_enabled {
            println!("    => real conflict (choice or arbitration)");
        }
    }
    let report = verify(stg, VerifyOptions::default()).expect("fixture has a code");
    println!("  verdict: {}\n", report.verdict);
}

fn main() {
    let d1 = gen::fig3_d1();
    let d2 = gen::fig3_d2();
    show(&d1);
    show(&d2);

    // The paper's point: same state graph, different well-formedness.
    let sg1 = build_state_graph(&d1, SgOptions::default()).unwrap();
    let sg2 = build_state_graph(&d2, SgOptions::default()).unwrap();
    println!("D1 and D2 induce state graphs of equal size: {} == {}", sg1.len(), sg2.len());
    println!("yet D1 is rejected (symmetric fake conflict) while D2 is accepted.");
}
