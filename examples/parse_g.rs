//! Verify an STG from a `.g` (astg) file — the interchange format of SIS,
//! petrify and Workcraft.
//!
//! Reads the file given as the first argument (or an embedded VME-bus
//! demo when none is given), infers the initial signal values with the
//! paper's Section 5.1 "don't care" technique if the file does not pin
//! them, and prints the full implementability report.
//!
//! Run with: `cargo run --example parse_g [file.g]`

use stgcheck::core::{verify, SymbolicReport, VerifyOptions};
use stgcheck::stg::{parse_g, write_g};

const EMBEDDED_VME: &str = "\
# VME bus controller, read cycle (classic CSC-violation demo).
.model vme-read
.inputs dsr ldtack
.outputs lds d dtack
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack-
dtack- dsr+
d- lds-
lds- ldtack-
ldtack- lds+
.marking { <dtack-,dsr+> <ldtack-,lds+> }
.end
";

fn main() {
    let (source, origin) = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read `{path}`: {e}"));
            (text, path)
        }
        None => (EMBEDDED_VME.to_string(), "<embedded VME demo>".to_string()),
    };

    let stg = match parse_g(&source) {
        Ok(stg) => stg,
        Err(e) => {
            eprintln!("{origin}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed `{}` from {origin}: {} places, {} transitions, {} signals",
        stg.name(),
        stg.net().num_places(),
        stg.net().num_transitions(),
        stg.num_signals()
    );

    let report = match verify(&stg, VerifyOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verification aborted: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "inferred/declared initial code: {}",
        report.initial_code.to_bit_string(report.signals)
    );
    println!("{}", SymbolicReport::table1_header());
    println!("{}", report.table1_row());
    println!("safe: {}", report.safe());
    println!("consistent: {}", report.consistent());
    println!("persistent: {}", report.persistent());
    println!("fake-free: {}", report.fake_free());
    println!("CSC: {}", report.csc_holds());
    for a in &report.csc {
        if !a.holds {
            let irreducible = report.irreducible_signals.contains(&a.signal);
            println!(
                "  CSC conflict on `{}` ({})",
                stg.signal_name(a.signal),
                if irreducible { "irreducible" } else { "reducible" }
            );
        }
    }
    println!("verdict: {}", report.verdict);

    // Round-trip: prove the writer emits what the parser accepts.
    let round = parse_g(&write_g(&stg)).expect("writer output must re-parse");
    assert_eq!(round.num_signals(), stg.num_signals());
}
