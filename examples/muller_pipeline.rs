//! Scalability demonstration on the Muller pipeline (the paper's flagship
//! scalable example): exponential state counts, small BDDs, moderate CPU.
//!
//! For each pipeline depth the example runs the symbolic traversal and —
//! while it stays feasible — the explicit state-graph baseline, printing
//! the state count, BDD sizes and both runtimes side by side. This is the
//! motivation of the paper in one table: the explicit column explodes, the
//! symbolic one does not.
//!
//! Run with: `cargo run --release --example muller_pipeline [max_n]`

use std::time::Instant;

use stgcheck::core::{verify, VerifyOptions};
use stgcheck::stg::gen;
use stgcheck::stg::{build_state_graph, SgOptions};

fn main() {
    let max_n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    const EXPLICIT_LIMIT: usize = 14;

    println!(
        "{:>4} {:>14} {:>9} {:>9} {:>12} {:>12}",
        "n", "states", "bdd-peak", "bdd-final", "symbolic(s)", "explicit(s)"
    );
    let mut n = 4;
    while n <= max_n {
        let stg = gen::muller_pipeline(n);
        let report = verify(&stg, VerifyOptions::default()).expect("code declared");
        assert!(report.consistent() && report.persistent() && report.csc_holds());

        let explicit_time = if n <= EXPLICIT_LIMIT {
            let start = Instant::now();
            let sg = build_state_graph(&stg, SgOptions::default())
                .expect("pipeline is bounded and consistent");
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(sg.len() as u128, report.num_states, "engines must agree");
            format!("{secs:12.3}")
        } else {
            format!("{:>12}", "skipped")
        };
        println!(
            "{:>4} {:>14} {:>9} {:>9} {:>12.3} {}",
            n,
            report.num_states,
            report.bdd_peak,
            report.bdd_final,
            report.times.traversal_consistency,
            explicit_time
        );
        n += 4;
    }
    println!("\nAll verdicts: gate-implementable (consistent, persistent, CSC).");
}
