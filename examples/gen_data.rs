//! Regenerates the `.g` files shipped under `examples/data/` and the
//! persistent benchmark fixtures under `benchmarks/`.
//!
//! The CLI tests (`tests/cli.rs`) and the `parse_g` example read the
//! example data; the differential and engine-equivalence suites
//! (`tests/differential.rs`, `tests/engines.rs`) and `table1` read the
//! benchmark fixtures. Running this example rewrites all of them from
//! the canonical in-code generators, so the shipped data can never drift
//! from the library.
//!
//! Run with: `cargo run --example gen_data`

use std::fs;
use std::path::Path;

use stgcheck::stg::{gen, write_g, Stg, StgBuilder};

/// The paper-style two-signal handshake: one input request, one output
/// acknowledge, four-phase cycle. Gate-implementable.
fn handshake() -> Stg {
    let mut b = StgBuilder::new("handshake");
    b.input("r");
    b.output("a");
    b.cycle(&["r+", "a+", "r-", "a-"]);
    b.initial_code_str("00");
    b.build().expect("handshake is well-formed")
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data");
    fs::create_dir_all(&dir).expect("create examples/data");
    let files: &[(&str, Stg)] = &[
        ("handshake.g", handshake()),
        ("vme_read.g", gen::vme_read()),
        ("mutex4.g", gen::mutex(4)),
        ("irreducible.g", gen::irreducible_csc_stg()),
        ("muller4.g", gen::muller_pipeline(4)),
    ];
    for (name, stg) in files {
        let path = dir.join(name);
        fs::write(&path, write_g(stg)).expect("write .g file");
        println!("wrote {}", path.display());
    }

    // The persistent benchmark corpus: the classic scalable families at
    // the sizes the differential suites and `table1 --small` exercise.
    let bench_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("benchmarks");
    fs::create_dir_all(&bench_dir).expect("create benchmarks/");
    for (name, stg) in gen::benchmark_fixtures() {
        let path = bench_dir.join(name);
        fs::write(&path, write_g(&stg)).expect("write benchmark fixture");
        println!("wrote {}", path.display());
    }
}
