//! From verification to synthesis: derive the gate equations the paper's
//! checks enable.
//!
//! Section 2 of the paper: once an STG is known to be gate-implementable
//! (CSC holds), "the logic equations for all gates of the circuit can be
//! derived by the STG in a conventional way". This example derives them
//! symbolically for three designs:
//!
//! * the r/a handshake — the output is a wire (`a = r`);
//! * the Muller pipeline — every stage comes out as the classic C-element
//!   `cᵢ = cᵢ₋₁ cᵢ₊₁' + cᵢ (cᵢ₋₁ + cᵢ₊₁')`;
//! * the mutex element — grant gates guarded by the opposite grant.
//!
//! Run with: `cargo run --example synthesis`

use stgcheck::core::{SymbolicStg, TraversalStrategy, VarOrder};
use stgcheck::stg::gen;
use stgcheck::stg::{Stg, StgBuilder};

fn synthesise(stg: &Stg) {
    println!("== {} ==", stg.name());
    let mut sym = SymbolicStg::new(stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().expect("code available");
    let traversal = sym.traverse(code, TraversalStrategy::Chained);
    match sym.derive_all_functions(traversal.reached) {
        Ok(functions) => {
            for f in &functions {
                println!("  {}", sym.function_to_sop(f));
            }
        }
        Err(e) => println!("  cannot synthesise: {e}"),
    }
    println!();
}

fn main() {
    // A plain four-phase handshake: the output is a buffer of the input.
    let mut b = StgBuilder::new("handshake");
    b.input("r");
    b.output("a");
    b.cycle(&["r+", "a+", "r-", "a-"]);
    b.initial_code_str("00");
    synthesise(&b.build().expect("well-formed"));

    // Muller pipeline: C-elements fall out of the excitation regions.
    synthesise(&gen::muller_pipeline(4));

    // The Fig. 1 mutex element.
    synthesise(&gen::mutex_element());

    // A CSC violation makes derivation fail — by design.
    synthesise(&gen::csc_violation_stg());
}
