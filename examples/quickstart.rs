//! Quickstart: verify the paper's Fig. 1 mutual-exclusion element.
//!
//! Builds the two-user mutex STG, runs the full symbolic verification
//! pipeline (traversal + consistency, persistency, fake conflicts /
//! commutativity, CSC) and prints the report — first under the strict
//! persistency policy, then with arbitration points allowed, which is the
//! appropriate reading for a mutual-exclusion element.
//!
//! Run with: `cargo run --example quickstart`

use stgcheck::core::{verify, SymbolicReport, VerifyOptions};
use stgcheck::stg::gen;
use stgcheck::stg::PersistencyPolicy;

fn print_report(title: &str, report: &SymbolicReport) {
    println!("== {title} ==");
    println!("  model:            {}", report.name);
    println!(
        "  places/signals:   {} / {} (initial code {})",
        report.places,
        report.signals,
        report.initial_code.to_bit_string(report.signals)
    );
    println!("  reachable states: {}", report.num_states);
    println!(
        "  BDD size:         peak {} nodes, final {} nodes",
        report.bdd_peak, report.bdd_final
    );
    println!("  safe:             {}", report.safe());
    println!("  consistent:       {}", report.consistent());
    println!("  persistent:       {}", report.persistent());
    for v in &report.persistency {
        println!("    - signal disabled at {}", v.witness);
    }
    println!("  fake-free:        {}", report.fake_free());
    println!("  deterministic:    {}", report.deterministic);
    println!("  CSC:              {}", report.csc_holds());
    println!("  verdict:          {}", report.verdict);
    println!();
}

fn main() {
    // The paper's running example: Figure 1.
    let stg = gen::mutex_element();
    println!(
        "Two-user mutual exclusion element: {} places, {} transitions, {} signals\n",
        stg.net().num_places(),
        stg.net().num_transitions(),
        stg.num_signals()
    );

    // Strict reading of Def. 3.2: the grant conflict a1+/a2+ is reported.
    let strict = verify(&stg, VerifyOptions::default()).expect("initial code is declared");
    print_report("strict persistency policy", &strict);

    // The paper's footnote: arbitration points may disable non-inputs.
    let relaxed = verify(
        &stg,
        VerifyOptions {
            policy: PersistencyPolicy { allow_arbitration: true },
            ..VerifyOptions::default()
        },
    )
    .expect("initial code is declared");
    print_report("arbitration allowed (footnote 1)", &relaxed);

    println!("Table 1 row format:");
    println!("{}", stgcheck::core::SymbolicReport::table1_header());
    println!("{}", relaxed.table1_row());
}
