.model csc-irreducible
.inputs a
.outputs b
.graph
a+ a-
a- b+
b+ b-
b- a+
.marking { <b-,a+> }
.end
