.model vme-read
.inputs dsr ldtack
.outputs lds d dtack
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack-
dtack- dsr+
d- lds-
lds- ldtack-
ldtack- lds+
.marking { <dtack-,dsr+> <ldtack-,lds+> }
.end
