//! Counter-example traces: when a check fails, `stgcheck` can produce a
//! concrete firing sequence from the initial state to the violation —
//! the debugging workflow the symbolic onion rings enable.
//!
//! Demonstrated on three targets:
//! 1. a consistency violation (the paper's `b+ a+ b+` example);
//! 2. a chosen functional state of the mutex element (grant 1 held while
//!    user 2 requests);
//! 3. the deadlock of a terminating specification.
//!
//! Run with: `cargo run --example trace_debug`

use stgcheck::core::{SymbolicStg, VarOrder};
use stgcheck::stg::gen;
use stgcheck::stg::{Polarity, Stg, StgBuilder};

fn show_trace(stg: &Stg, trace: &[stgcheck::petri::TransId]) {
    let pretty: Vec<String> = trace.iter().map(|&t| stg.label_string(t)).collect();
    println!("  trace ({} firings): {}", trace.len(), pretty.join(" ; "));
}

fn main() {
    // 1. Consistency violation of the paper's Section 3.1 example.
    let stg = gen::inconsistent_stg();
    println!("== {} ==", stg.name());
    let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
    let code = stg.initial_code().expect("fixture declares a code");
    let traversal = sym.traverse_with_rings(code);
    let b = stg.signal_by_name("b").expect("signal b exists");
    let bad = sym.inconsistent_set(b, Polarity::Rise);
    let trace = sym.extract_trace(&traversal, bad).expect("the inconsistency is reachable");
    println!("  shortest path to `b+` enabled while b = 1:");
    show_trace(&stg, &trace);
    println!();

    // 2. Functional query on the mutex element.
    let stg = gen::mutex_element();
    println!("== {} ==", stg.name());
    let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
    let code = stg.initial_code().expect("declared");
    let traversal = sym.traverse_with_rings(code);
    let a1 = sym.signal_var(stg.signal_by_name("a1").expect("a1"));
    let r2 = sym.signal_var(stg.signal_by_name("r2").expect("r2"));
    let target = {
        let mgr = sym.manager_mut();
        let (v1, v2) = (mgr.var(a1), mgr.var(r2));
        mgr.and(v1, v2)
    };
    let trace = sym.extract_trace(&traversal, target).expect("state reachable");
    println!("  shortest path to: user 1 granted while user 2 requests");
    show_trace(&stg, &trace);
    println!();

    // 3. Deadlock of a one-shot specification.
    let mut b = StgBuilder::new("oneshot");
    b.input("r");
    b.output("a");
    let p = b.place("p", 1);
    b.pt(p, "r+");
    b.arc("r+", "a+");
    b.initial_code_str("00");
    let stg = b.build().expect("well-formed");
    println!("== {} ==", stg.name());
    let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
    let traversal = sym.traverse_with_rings(stg.initial_code().expect("declared"));
    let dead = sym.deadlock_set(traversal.reached);
    if dead.is_false() {
        println!("  no deadlock");
    } else {
        let trace = sym.extract_trace(&traversal, dead).expect("deadlock reachable");
        println!("  shortest path into the deadlock:");
        show_trace(&stg, &trace);
        let witness = sym.decode_witness(dead).expect("witness");
        println!("  dead state: {witness}");
    }
}
