//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the *subset* of the `rand 0.8` API its tests use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! (over half-open and inclusive integer ranges) and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — deterministic, seedable and statistically
//! fine for test-case generation. It is **not** the real `rand` crate: no
//! cryptographic guarantees, no distributions, no `thread_rng`. If the
//! registry ever becomes reachable, swap the `rand` entry in the workspace
//! `Cargo.toml` back to the crates.io version; no call sites change.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let n: usize = rng.gen_range(2..=5);
//! assert!((2..=5).contains(&n));
//! let again = StdRng::seed_from_u64(42).gen_range(2..=5usize);
//! assert_eq!(n, again); // fully deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator producing raw 32/64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range using `rng`.
    fn sample_one(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64);

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample_one(&mut draw)
    }

    /// Returns `true` with probability `p` (must be in `0.0..=1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa are plenty for test-case branching.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // addition + two xor-shift-multiplies per word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y: u32 = rng.gen_range(0..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "suspicious coin: {heads}/2000");
    }
}
