//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the *subset* of the Criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It is a real (if simple) harness: each benchmark is warmed up once,
//! then timed over an adaptive number of iterations (targeting ~200 ms of
//! wall time per benchmark, capped by [`BenchmarkGroup::sample_size`]
//! batches), and the median per-iteration time is printed as
//!
//! ```text
//! bdd/and/8              time:   12.345 µs/iter  (21 iters x 5 samples)
//! ```
//!
//! There is no statistical analysis, no plotting and no baseline
//! comparison. If the registry ever becomes reachable, swap the
//! `criterion` entry in the workspace `Cargo.toml` back to the crates.io
//! version; no bench source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 5 }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        let name = name.into();
        if name.is_empty() {
            BenchmarkId { id: format!("{param}") }
        } else {
            BenchmarkId { id: format!("{name}/{param}") }
        }
    }

    /// A benchmark identified by its parameter value alone.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{param}") }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (default 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark; `f` drives the [`Bencher`].
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Runs one parameterised benchmark, passing `input` through to `f`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Finishes the group (present for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher { samples, median: None, iters: 0 }
    }

    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills
        // roughly 40 ms per sample, so short routines are still resolvable.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(40);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(start.elapsed() / iters as u32);
        }
        times.sort();
        self.median = Some(times[times.len() / 2]);
        self.iters = iters;
    }

    fn report(&self, group: &str, id: &str) {
        let label = format!("{group}/{id}");
        match self.median {
            Some(t) => println!(
                "{label:<50} time: {:>12}  ({} iters x {} samples)",
                format_duration(t),
                self.iters,
                self.samples
            ),
            None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns/iter")
    } else if ns < 1_000_000 {
        format!("{:.3} µs/iter", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms/iter", ns as f64 / 1e6)
    } else {
        format!("{:.3} s/iter", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_a_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::new("", "x").id, "x");
        assert_eq!(BenchmarkId::from_parameter(16).id, "16");
    }
}
