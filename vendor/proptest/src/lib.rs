//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the *subset* of the proptest API its property tests
//! use: the [`proptest!`] test-harness macro, [`prop_assert!`] /
//! [`prop_assert_eq!`], [`prop_oneof!`], [`Strategy`](strategy::Strategy)
//! with `prop_map` / `prop_recursive` / `prop_perturb` / `boxed`, integer
//! ranges and tuples as strategies, [`strategy::Just`], [`prelude::any`]
//! and [`collection::vec`].
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **Deterministic**: every case is generated from a seed derived from
//!   the test name and case index, so failures reproduce exactly across
//!   runs and machines (no persistence files needed).
//! * **No shrinking**: a failing case reports its inputs' `Debug` via the
//!   assertion message and the case index, but is not minimised.
//!
//! If the registry ever becomes reachable, swap the `proptest` entry in
//! the workspace `Cargo.toml` back to the crates.io version; no test
//! source changes.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!     // (Write `#[test]` above the fn as usual; omitted here so the
//!     // doc-test can call the generated harness directly.)
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner types: the deterministic RNG, config and failure type.
pub mod test_runner {
    use std::fmt;

    /// Deterministic generator handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a raw seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Derives the seed for one `(test, case)` pair: FNV-1a over the
        /// test name, mixed with the case index.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        /// Returns the next pseudo-random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns the next pseudo-random `u32`.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Splits off an independent generator (used by `prop_perturb`).
        pub fn fork(&mut self) -> TestRng {
            TestRng::from_seed(self.next_u64())
        }
    }

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property assertion, carried out of the test body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps an assertion-failure message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Transforms each value with access to a forked RNG.
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { inner: self, f }
        }

        /// Generates recursive structures: `self` is the leaf strategy and
        /// `recurse` wraps an inner strategy into a deeper one. The
        /// `_desired_size` and `_expected_branch_size` hints of real
        /// proptest are accepted but ignored; only `depth` bounds nesting.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_perturb`].
    #[derive(Clone)]
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, TestRng) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            let v = self.inner.generate(rng);
            let fork = rng.fork();
            (self.f)(v, fork)
        }
    }

    /// Strategy returned by [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        #[allow(clippy::type_complexity)]
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                recurse: Rc::clone(&self.recurse),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Pick a nesting depth, then stack `recurse` that many times
            // over the leaf strategy; each layer may still choose to
            // bottom out early if `recurse` mixes in leaf alternatives.
            let d = rng.next_u64() % (u64::from(self.depth) + 1);
            let mut s = self.base.clone();
            for _ in 0..d {
                s = (self.recurse)(s);
            }
            s.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical strategy, for [`any`](crate::prelude::any).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy of an [`Arbitrary`] type.
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    impl<A> Default for Any<A> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Generates a `Vec` whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The canonical strategy for type `A` (e.g. `any::<bool>()`).
    pub fn any<A: Arbitrary>() -> crate::strategy::Any<A> {
        crate::strategy::Any::default()
    }
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Fails the current case unless the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at deterministic case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn deterministic_per_case() {
        let a = TestRng::for_case("t", 3).next_u64();
        let b = TestRng::for_case("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::for_case("t", 4).next_u64());
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![(0usize..4).prop_map(|i| i * 10), Just(99usize),];
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 99 || v < 40);
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // `Leaf`'s payload exists to exercise `prop_map`
        enum Tree {
            Leaf(bool),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = any::<bool>().prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            prop_oneof![
                inner.clone(),
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = TestRng::from_seed(9);
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let strat = crate::collection::vec(0usize..5, 2..6);
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn harness_runs_and_passes(x in 0u32..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flip, flip);
        }
    }
}
