# Hand-written smoke fixture for the stgcheck CLI (tests/cli.rs).
#
# A two-signal four-phase handshake written the verbose way, to exercise
# parser features the generated examples/data/*.g files do not use:
# explicit places, a dummy transition, and a comment-heavy layout.
# See docs/g-format.md for the full dialect.
.model smoke
.inputs req
.outputs ack
.dummy sync
.graph
p0 req+          # explicit place p0 feeds the rising request
req+ ack+
ack+ sync        # dummy transition between the phases
sync req-
req- ack-
ack- p0
.marking { p0 }
.end
