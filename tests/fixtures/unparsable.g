# Malformed on purpose: the arc line below names two places, which is
# rejected (Petri nets are bipartite). tests/cli.rs expects exit code 2
# and a parse error naming the line.
.model broken
.inputs x
.graph
p0 p1
.end
