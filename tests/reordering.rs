//! Dynamic-reordering acceptance suite: in-place sifting must *pay off*
//! — on benchmark families traversed under a deliberately bad static
//! order, `--reorder auto` (and `sift`) must reduce the peak live-node
//! count while computing exactly the same state space — and the grouping
//! metadata the encoder hands the manager must be well-formed.
//!
//! The companion Criterion bench (`crates/bench/benches/reorder.rs`)
//! times the same configurations; `BENCH_table1.json` records them.

use stgcheck::core::{EngineOptions, ReorderMode, SymbolicStg, VarOrder};
use stgcheck::stg::gen;

/// Families where the declaration order is known-bad and sifting
/// recovers an interleaving-quality order (see BENCH_table1.json for the
/// recorded numbers).
fn bad_order_families() -> Vec<stgcheck::stg::Stg> {
    vec![gen::muller_pipeline(8), gen::par_handshakes(6), gen::master_read(4)]
}

#[test]
fn sifting_reduces_peak_on_bad_static_orders() {
    for stg in bad_order_families() {
        let mut results = Vec::new();
        for reorder in [ReorderMode::None, ReorderMode::Auto, ReorderMode::Sift] {
            let mut sym = SymbolicStg::new(&stg, VarOrder::Declaration);
            let code = sym.effective_initial_code().unwrap();
            let opts = EngineOptions { reorder, ..EngineOptions::default() };
            let t = sym.traverse_with_engine(code, &opts);
            results.push((reorder, t.stats));
        }
        let (_, none) = &results[0];
        for (mode, stats) in &results[1..] {
            assert_eq!(
                stats.num_states,
                none.num_states,
                "{}: {mode} changed the state count",
                stg.name()
            );
            assert!(*mode == ReorderMode::None || stats.sift_passes > 0, "{}", stg.name());
            assert!(
                stats.peak_nodes < none.peak_nodes,
                "{}: reorder {mode} peak {} not below static-order peak {}",
                stg.name(),
                stats.peak_nodes,
                none.peak_nodes
            );
        }
    }
}

/// Sifting between iterations must not corrupt the reachable set: the
/// sifted traversal agrees with an untouched interleaved-order run.
#[test]
fn sifted_traversal_matches_clean_traversal() {
    for stg in bad_order_families() {
        let mut clean = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = clean.effective_initial_code().unwrap();
        let reference = clean.traverse_with_engine(code, &EngineOptions::default());
        let mut sifted = SymbolicStg::new(&stg, VarOrder::Declaration);
        let opts = EngineOptions { reorder: ReorderMode::Sift, ..EngineOptions::default() };
        let t = sifted.traverse_with_engine(code, &opts);
        assert_eq!(t.stats.num_states, reference.stats.num_states, "{}", stg.name());
        sifted.manager_mut().check_invariants();
    }
}

/// The interleaved encoder declares one sifting group per signal (the
/// signal plus its trailing places), covering disjoint variables, each
/// contiguous in the initial order and led by the signal variable.
#[test]
fn interleaved_encoding_declares_contiguous_groups() {
    for stg in bad_order_families() {
        let sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let groups = sym.var_groups();
        assert_eq!(groups.len(), stg.num_signals(), "{}", stg.name());
        let mgr = sym.manager();
        let mut seen = vec![false; mgr.num_vars()];
        for g in groups {
            assert!(!g.is_empty());
            assert!(
                mgr.var_name(g[0]).starts_with("s:"),
                "{}: group lead not a signal",
                stg.name()
            );
            let levels: Vec<usize> = g.iter().map(|&v| mgr.level_of(v)).collect();
            let lo = *levels.iter().min().unwrap();
            let hi = *levels.iter().max().unwrap();
            assert_eq!(hi - lo + 1, g.len(), "{}: group not contiguous", stg.name());
            for &v in g {
                assert!(!seen[v.index()], "{}: variable in two groups", stg.name());
                seen[v.index()] = true;
            }
        }
        // The non-interleaved orders carry no grouping.
        let plain = SymbolicStg::new(&stg, VarOrder::Declaration);
        assert!(plain.var_groups().is_empty());
    }
}

/// Grouped sifting keeps every signal block intact through a real
/// traversal's reorder passes.
#[test]
fn signal_groups_survive_traversal_sifting() {
    let stg = gen::muller_pipeline(8);
    let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let opts = EngineOptions { reorder: ReorderMode::Sift, ..EngineOptions::default() };
    let t = sym.traverse_with_engine(code, &opts);
    assert!(t.stats.sift_passes > 0);
    let mgr = sym.manager();
    for g in sym.var_groups() {
        let levels: Vec<usize> = g.iter().map(|&v| mgr.level_of(v)).collect();
        let lo = *levels.iter().min().unwrap();
        let hi = *levels.iter().max().unwrap();
        assert_eq!(hi - lo + 1, g.len(), "group {g:?} split by sifting");
    }
}
