//! Helpers shared by the integration suites that read the checked-in
//! `benchmarks/` corpus. The corpus contents themselves have one source
//! of truth: `stgcheck::stg::gen::benchmark_fixtures`.

// Each test target compiles its own copy of this module and not every
// target uses every helper.
#![allow(dead_code)]

use std::path::Path;

use stgcheck::stg::{gen, parse_g, Stg};

/// Parses one checked-in fixture from `benchmarks/`.
pub fn fixture(name: &str) -> Stg {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("benchmarks").join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run `cargo run --example gen_data`)", path.display()));
    parse_g(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Every checked-in benchmark fixture, parsed from disk.
pub fn fixture_corpus() -> Vec<Stg> {
    gen::benchmark_fixtures().into_iter().map(|(name, _)| fixture(name)).collect()
}

/// The hand-imported corpus nets (no in-code generator; the `.g` files
/// are the source of truth — see `benchmarks/README.md`).
pub fn imported_corpus() -> Vec<Stg> {
    ["celement.g", "fd_latch_simple.g", "par_join.g"].into_iter().map(fixture).collect()
}
