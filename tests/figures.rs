//! Integration tests reproducing the paper's illustrative figures
//! (experiment index F1–F6 in DESIGN.md).

use stgcheck::core::{verify, SymbolicStg, TraversalStrategy, VarOrder, VerifyOptions};
use stgcheck::petri::ReachOptions;
use stgcheck::stg::gen;
use stgcheck::stg::{
    build_state_graph, fake_conflicts, Implementability, PersistencyPolicy, SgOptions,
};

/// F1: Fig. 1 — the two-user mutual exclusion element has 9 places, 8
/// transitions, 4 signals, and its Petri net is safe and live.
#[test]
fn fig1_mutex_element_shape() {
    let stg = gen::mutex_element();
    let net = stg.net();
    assert_eq!(net.num_places(), 9);
    assert_eq!(net.num_transitions(), 8);
    assert_eq!(stg.num_signals(), 4);
    assert!(net.is_safe(ReachOptions::default()).unwrap());
    // Liveness smoke check: every transition fires somewhere.
    let rg = net.reachability_graph(ReachOptions::default()).unwrap();
    for t in net.transitions() {
        assert!(
            rg.markings().iter().any(|m| net.is_enabled(t, m)),
            "{} never enabled",
            net.trans_name(t)
        );
    }
}

/// F2: Fig. 2 — reachability graph, state graph and full state graph of
/// the mutex element. With a fixed initial code, markings and full states
/// are in bijection here, and the binary codes are not all distinct
/// (several markings share a code only if consistent — here they don't).
#[test]
fn fig2_three_state_models() {
    let stg = gen::mutex_element();
    let rg = stg.net().reachability_graph(ReachOptions::default()).unwrap();
    let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
    // One state per marking (codes are a function of the marking here).
    assert_eq!(rg.len(), sg.len());
    // And the symbolic count agrees.
    let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let t = sym.traverse(code, TraversalStrategy::Chained);
    assert_eq!(t.stats.num_states, sg.len() as u128);
}

/// F3: Fig. 3 — D1 (fake choice) and D2 (true concurrency) induce the
/// same state graph; D1's transitions are non-persistent but its signals
/// are persistent.
#[test]
fn fig3_d1_d2_equivalence() {
    let d1 = gen::fig3_d1();
    let d2 = gen::fig3_d2();
    let sg1 = build_state_graph(&d1, SgOptions::default()).unwrap();
    let sg2 = build_state_graph(&d2, SgOptions::default()).unwrap();
    assert_eq!(sg1.len(), sg2.len());
    assert_eq!(sg1.num_edges(), sg2.num_edges());

    // Transition-level: non-persistent. Signal-level: persistent.
    let tp = stgcheck::stg::transition_persistency_violations(&d1, &sg1);
    assert!(!tp.is_empty());
    let sp = stgcheck::stg::signal_persistency_violations(&d1, &sg1, PersistencyPolicy::default());
    assert!(sp.is_empty());
}

/// F4: Fig. 4 — symmetric vs asymmetric fake conflicts, explicit and
/// symbolic analyses agreeing.
#[test]
fn fig4_fake_conflict_taxonomy() {
    let d1 = gen::fig3_d1();
    let rg = d1.net().reachability_graph(ReachOptions::default()).unwrap();
    let explicit = fake_conflicts(&d1, &rg);
    assert_eq!(explicit.len(), 1);
    assert!(explicit[0].is_symmetric_fake());

    let mut sym = SymbolicStg::new(&d1, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let t = sym.traverse(code, TraversalStrategy::Chained);
    let r_n = sym.project_markings(t.reached);
    let symbolic = sym.check_fake_conflicts(r_n);
    assert_eq!(explicit, symbolic);
}

/// F5: Fig. 5 — the traversal algorithm reaches the same fixpoint under
/// both frontier strategies and matches the explicit enumeration.
#[test]
fn fig5_traversal_fixpoint() {
    for stg in [gen::mutex(3), gen::master_read(3), gen::vme_read()] {
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = sym.effective_initial_code().unwrap();
        let chained = sym.traverse(code, TraversalStrategy::Chained);
        let bfs = sym.traverse(code, TraversalStrategy::Bfs);
        assert_eq!(chained.reached, bfs.reached, "{}", stg.name());
        assert_eq!(chained.stats.num_states, sg.len() as u128, "{}", stg.name());
    }
}

/// F6: Fig. 6 — the persistency algorithms only inspect conflict places;
/// a marked graph is vacuously persistent and the mutex grant conflict is
/// the single violation pair.
#[test]
fn fig6_persistency_algorithms() {
    let mg = gen::muller_pipeline(6);
    assert!(mg.net().conflict_places().is_empty());
    let mut sym = SymbolicStg::new(&mg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let t = sym.traverse(code, TraversalStrategy::Chained);
    let r_n = sym.project_markings(t.reached);
    assert!(sym.check_transition_persistency(r_n).is_empty());

    let mutex = gen::mutex_element();
    let mut sym = SymbolicStg::new(&mutex, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let t = sym.traverse(code, TraversalStrategy::Chained);
    let r_n = sym.project_markings(t.reached);
    let tv = sym.check_transition_persistency(r_n);
    assert_eq!(tv.len(), 2); // a1+ disabled by a2+ and vice versa
}

/// The implementability hierarchy of Def. 2.6 is honoured end to end.
#[test]
fn implementability_hierarchy() {
    let cases = [
        (gen::muller_pipeline(4), Implementability::Gate),
        (gen::vme_read(), Implementability::InputOutput),
        (gen::irreducible_csc_stg(), Implementability::SpeedIndependent),
        (gen::inconsistent_stg(), Implementability::NotImplementable),
    ];
    for (stg, expected) in cases {
        let report = verify(&stg, VerifyOptions::default()).unwrap();
        assert_eq!(report.verdict, expected, "{}", stg.name());
    }
}
