//! Ablation A1 (DESIGN.md): variable ordering matters — the paper's
//! Section 6 remark made executable. The interleaved (DFS) order keeps the
//! reachable-set BDD small on the scalable families; the naive separated
//! orders are measurably worse.

use stgcheck::core::{SymbolicStg, TraversalStrategy, VarOrder};
use stgcheck::stg::gen;
use stgcheck::stg::Code;

fn peak_and_final(stg: &stgcheck::stg::Stg, order: VarOrder) -> (usize, usize) {
    let mut sym = SymbolicStg::new(stg, order);
    let t = sym.traverse(Code::ZERO, TraversalStrategy::Chained);
    (t.stats.peak_nodes, t.stats.final_nodes)
}

#[test]
fn interleaved_beats_naive_on_par_handshakes() {
    let stg = gen::par_handshakes(8);
    let (_, good) = peak_and_final(&stg, VarOrder::Interleaved);
    let (_, separated) = peak_and_final(&stg, VarOrder::PlacesThenSignals);
    // Independent components: the interleaved order is linear in n, the
    // places/signals-separated one couples every signal to every place
    // region.
    assert!(good < separated, "interleaved {good} should beat separated {separated}");
    // And it is *small* in absolute terms: a few nodes per handshake.
    assert!(good < 200, "got {good}");
}

#[test]
fn interleaved_scales_linearly_on_par_handshakes() {
    let (_, f4) = peak_and_final(&gen::par_handshakes(4), VarOrder::Interleaved);
    let (_, f8) = peak_and_final(&gen::par_handshakes(8), VarOrder::Interleaved);
    let (_, f16) = peak_and_final(&gen::par_handshakes(16), VarOrder::Interleaved);
    // Linear growth: doubling n roughly doubles the BDD, far from the
    // 4^n state count.
    assert!(f8 <= 3 * f4, "f4={f4} f8={f8}");
    assert!(f16 <= 3 * f8, "f8={f8} f16={f16}");
}

#[test]
fn all_orders_agree_on_semantics() {
    // Ordering must never change the *answer*, only the cost.
    let stg = gen::muller_pipeline(6);
    let mut counts = Vec::new();
    for order in [
        VarOrder::Interleaved,
        VarOrder::PlacesThenSignals,
        VarOrder::SignalsThenPlaces,
        VarOrder::Declaration,
    ] {
        let mut sym = SymbolicStg::new(&stg, order);
        let t = sym.traverse(Code::ZERO, TraversalStrategy::Chained);
        counts.push(t.stats.num_states);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn muller_bdd_stays_polynomial_under_interleaved_order() {
    // State count grows exponentially; the BDD must not.
    let mut prev_states = 0u128;
    for n in [6usize, 10, 14, 18] {
        let stg = gen::muller_pipeline(n);
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let t = sym.traverse(Code::ZERO, TraversalStrategy::Chained);
        assert!(t.stats.num_states > prev_states);
        prev_states = t.stats.num_states;
        assert!(
            (t.stats.final_nodes as u128) * 20 < t.stats.num_states.max(10_000),
            "muller({n}): {} nodes for {} states",
            t.stats.final_nodes,
            t.stats.num_states
        );
    }
}
