//! System-level complement-edge tests: the tagged-handle manager must be
//! semantically indistinguishable from reference semantics on real
//! workloads — the explicit state graph — while making negation free.
//!
//! These are the acceptance checks for the complement-edge refactor: the
//! `Reached` BDD of a symbolic traversal evaluates and counts exactly
//! like the explicit enumeration, its O(1) complement evaluates and
//! counts to exactly the off-set, and none of it costs a single node.

mod common;

use common::imported_corpus;
use stgcheck::core::{EngineOptions, SymbolicStg, VarOrder};
use stgcheck::stg::{build_state_graph, gen, SgOptions, Stg};

/// The full-state satisfying assignment (places + signals) of one
/// explicit state, in the symbolic encoding's variable numbering.
fn state_assignment(sym: &SymbolicStg, stg: &Stg, state: &stgcheck::stg::FullState) -> Vec<bool> {
    let mut a = vec![false; sym.manager().num_vars()];
    for p in stg.net().places() {
        a[sym.place_var(p).index()] = state.marking.tokens(p) > 0;
    }
    for s in stg.signals() {
        a[sym.signal_var(s).index()] = state.code.get(s);
    }
    a
}

/// Explicit-vs-symbolic equivalence of the reached set *and its free
/// complement* on one STG.
fn check_complement_semantics(stg: &Stg) {
    let mut sym = SymbolicStg::new(stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let t = sym.traverse_with_engine(code, &EngineOptions::default());
    let sg = build_state_graph(stg, SgOptions::default()).unwrap();

    // Reference counting: sat_count == explicit enumeration.
    assert_eq!(t.stats.num_states, sg.len() as u128, "{}: state count", stg.name());

    // Negation is free: no arena growth, no peak movement.
    let live = sym.manager().live_nodes();
    let peak = sym.manager().peak_live_nodes();
    let not_reached = sym.manager_mut().not(t.reached);
    assert_eq!(sym.manager().live_nodes(), live, "{}: not() grew the arena", stg.name());
    assert_eq!(sym.manager().peak_live_nodes(), peak, "{}: not() moved the peak", stg.name());
    assert_eq!(sym.manager_mut().not(not_reached), t.reached, "{}: involution", stg.name());
    assert_eq!(
        sym.manager().size(not_reached),
        sym.manager().size(t.reached),
        "{}: ¬Reached must share every node with Reached",
        stg.name()
    );

    // Complement counting: |¬Reached| = 2ⁿ − |Reached| over the full
    // encoding space (all nets here are far below 128 variables).
    let nvars = sym.manager().num_vars() as u32;
    assert_eq!(
        sym.manager().sat_count(not_reached),
        (1u128 << nvars) - t.stats.num_states,
        "{}: complement count",
        stg.name()
    );

    // Reference evaluation: every explicit state is in Reached and none
    // is in its complement (eval walks straight through complement tags).
    for v in 0..sg.len() {
        let a = state_assignment(&sym, stg, sg.state(v));
        assert!(sym.manager().eval(t.reached, &a), "{}: state {v} not in Reached", stg.name());
        assert!(!sym.manager().eval(not_reached, &a), "{}: state {v} in ¬Reached", stg.name());
    }
}

#[test]
fn complement_manager_matches_reference_semantics_on_random_stgs() {
    for seed in 0..20u64 {
        let stg = gen::random_safe_stg(seed);
        check_complement_semantics(&stg);
    }
}

#[test]
fn complement_manager_matches_reference_semantics_on_corpus() {
    for stg in imported_corpus() {
        check_complement_semantics(&stg);
    }
    check_complement_semantics(&gen::vme_read());
    check_complement_semantics(&gen::master_read(3));
}
