//! End-to-end test of the `stgcheck` CLI binary on the shipped `.g`
//! files: exit codes and verdict lines.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // Cargo puts integration tests and binaries in the same target dir.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // test binary name
    path.pop(); // deps/
    path.push(format!("stgcheck{}", std::env::consts::EXE_SUFFIX));
    path
}

fn data(file: &str) -> String {
    format!("{}/examples/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn fixture(file: &str) -> String {
    format!("{}/tests/fixtures/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// The hand-written smoke fixture (explicit places, a dummy transition,
/// comments — see docs/g-format.md) parses and verifies end-to-end.
#[test]
fn smoke_fixture_full_report() {
    let out = Command::new(bin()).arg(fixture("smoke.g")).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("safe:        true"), "{stdout}");
    assert!(stdout.contains("CSC:         true"), "{stdout}");
    assert!(stdout.contains("gate-implementable"), "{stdout}");
}

/// Several files in one invocation: the worst verdict drives the exit
/// code, but every file still gets its own verdict line.
#[test]
fn multiple_files_report_individually() {
    let out = Command::new(bin())
        .args(["--quiet", &fixture("smoke.g"), &data("irreducible.g")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("smoke.g: gate-implementable"), "{stdout}");
    assert!(stdout.contains("interface change needed"), "{stdout}");
}

/// Parse errors name the offending line and exit with code 2.
#[test]
fn unparsable_fixture_exits_2_with_line_number() {
    let out = Command::new(bin()).arg(fixture("unparsable.g")).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 7"), "{stderr}");
    assert!(stderr.contains("arc between two places"), "{stderr}");
}

#[test]
fn handshake_file_passes() {
    let out =
        Command::new(bin()).args(["--quiet", &data("handshake.g")]).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gate-implementable"), "{stdout}");
}

#[test]
fn vme_file_is_io_implementable() {
    let out =
        Command::new(bin()).args(["--quiet", &data("vme_read.g")]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("I/O-implementable"), "{stdout}");
}

#[test]
fn full_report_mentions_csc_conflicts() {
    let out = Command::new(bin()).arg(data("vme_read.g")).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conflict on `lds` (reducible)"), "{stdout}");
    assert!(stdout.contains("conflict on `d` (reducible)"), "{stdout}");
}

#[test]
fn mutex4_needs_arbitration_flag() {
    let strict =
        Command::new(bin()).args(["--quiet", &data("mutex4.g")]).output().expect("binary runs");
    assert!(!strict.status.success());
    let relaxed = Command::new(bin())
        .args(["--quiet", "--arbitration", &data("mutex4.g")])
        .output()
        .expect("binary runs");
    assert!(relaxed.status.success());
    assert!(String::from_utf8_lossy(&relaxed.stdout).contains("gate-implementable"));
}

#[test]
fn irreducible_file_fails_with_si_verdict() {
    let out = Command::new(bin())
        .args(["--quiet", &data("irreducible.g")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("interface change needed"));
}

#[test]
fn missing_file_exits_2() {
    let out = Command::new(bin()).arg("/nonexistent/never.g").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_option_exits_2_with_usage() {
    let out = Command::new(bin()).arg("--frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn order_flag_accepted() {
    for order in ["interleaved", "places", "signals", "declaration"] {
        let out = Command::new(bin())
            .args(["--quiet", "--order", order, &data("handshake.g")])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "order {order}");
    }
}

/// Every `--reorder` mode yields the same verdict, even when paired with
/// a deliberately bad static order; an unknown mode exits with usage.
#[test]
fn reorder_flag_accepted_and_verdict_stable() {
    for reorder in ["none", "sift", "auto"] {
        let out = Command::new(bin())
            .args(["--quiet", "--order", "declaration", "--reorder", reorder, &data("vme_read.g")])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "reorder {reorder}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("I/O-implementable"),
            "reorder {reorder}"
        );
    }
    let bad = Command::new(bin())
        .args(["--reorder", "frobnicate", &data("vme_read.g")])
        .output()
        .expect("binary runs");
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown reorder mode"));
}
