//! End-to-end test of the `stgcheck` CLI binary on the shipped `.g`
//! files: exit codes and verdict lines.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // Cargo puts integration tests and binaries in the same target dir.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // test binary name
    path.pop(); // deps/
    path.push(format!("stgcheck{}", std::env::consts::EXE_SUFFIX));
    path
}

fn data(file: &str) -> String {
    format!("{}/examples/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn fixture(file: &str) -> String {
    format!("{}/tests/fixtures/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// The hand-written smoke fixture (explicit places, a dummy transition,
/// comments — see docs/g-format.md) parses and verifies end-to-end.
#[test]
fn smoke_fixture_full_report() {
    let out = Command::new(bin()).arg(fixture("smoke.g")).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("safe:        true"), "{stdout}");
    assert!(stdout.contains("CSC:         true"), "{stdout}");
    assert!(stdout.contains("gate-implementable"), "{stdout}");
}

/// Several files in one invocation: the worst verdict drives the exit
/// code, but every file still gets its own verdict line.
#[test]
fn multiple_files_report_individually() {
    let out = Command::new(bin())
        .args(["--quiet", &fixture("smoke.g"), &data("irreducible.g")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("smoke.g: gate-implementable"), "{stdout}");
    assert!(stdout.contains("interface change needed"), "{stdout}");
}

/// Parse errors name the offending line and exit with code 2.
#[test]
fn unparsable_fixture_exits_2_with_line_number() {
    let out = Command::new(bin()).arg(fixture("unparsable.g")).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 7"), "{stderr}");
    assert!(stderr.contains("arc between two places"), "{stderr}");
}

#[test]
fn handshake_file_passes() {
    let out =
        Command::new(bin()).args(["--quiet", &data("handshake.g")]).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gate-implementable"), "{stdout}");
}

#[test]
fn vme_file_is_io_implementable() {
    let out =
        Command::new(bin()).args(["--quiet", &data("vme_read.g")]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("I/O-implementable"), "{stdout}");
}

#[test]
fn full_report_mentions_csc_conflicts() {
    let out = Command::new(bin()).arg(data("vme_read.g")).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conflict on `lds` (reducible)"), "{stdout}");
    assert!(stdout.contains("conflict on `d` (reducible)"), "{stdout}");
}

#[test]
fn mutex4_needs_arbitration_flag() {
    let strict =
        Command::new(bin()).args(["--quiet", &data("mutex4.g")]).output().expect("binary runs");
    assert!(!strict.status.success());
    let relaxed = Command::new(bin())
        .args(["--quiet", "--arbitration", &data("mutex4.g")])
        .output()
        .expect("binary runs");
    assert!(relaxed.status.success());
    assert!(String::from_utf8_lossy(&relaxed.stdout).contains("gate-implementable"));
}

#[test]
fn irreducible_file_fails_with_si_verdict() {
    let out = Command::new(bin())
        .args(["--quiet", &data("irreducible.g")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("interface change needed"));
}

#[test]
fn missing_file_exits_2() {
    let out = Command::new(bin()).arg("/nonexistent/never.g").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_option_exits_2_with_usage() {
    let out = Command::new(bin()).arg("--frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn order_flag_accepted() {
    for order in ["interleaved", "places", "signals", "declaration"] {
        let out = Command::new(bin())
            .args(["--quiet", "--order", order, &data("handshake.g")])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "order {order}");
    }
}

fn bench(file: &str) -> String {
    format!("{}/benchmarks/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// A fresh scratch directory for checkpoint files.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stgcheck-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The exit-code contract for budget exhaustion: a run that overruns
/// `--max-steps` exits 4 (never 1, never a panic), and rerunning with
/// the budget lifted — resuming any checkpoint the first run left —
/// completes with exit 0 and the true verdict.
#[test]
fn budget_exhaustion_exits_4_and_resume_completes() {
    let ck = scratch("exhaust").join("ck.bin");
    let exhausted = Command::new(bin())
        .args(["--quiet", "--max-steps", "400", "--checkpoint"])
        .arg(&ck)
        .args(["--checkpoint-every", "1", &bench("master_read_2.g")])
        .output()
        .expect("binary runs");
    assert_eq!(exhausted.status.code(), Some(4), "{}", String::from_utf8_lossy(&exhausted.stdout));
    assert!(
        String::from_utf8_lossy(&exhausted.stdout).contains("budget exhausted"),
        "{}",
        String::from_utf8_lossy(&exhausted.stdout)
    );

    let resumed = Command::new(bin())
        .args(["--quiet", "--resume", "--checkpoint"])
        .arg(&ck)
        .arg(bench("master_read_2.g"))
        .output()
        .expect("binary runs");
    assert_eq!(resumed.status.code(), Some(0), "{}", String::from_utf8_lossy(&resumed.stdout));
    assert!(String::from_utf8_lossy(&resumed.stdout).contains("gate-implementable"));
}

/// `--abort-after` routes through the cancellation latch: exit 3 with a
/// resumable checkpoint, and the resume finishes the job with exit 0.
#[test]
fn abort_after_exits_3_with_resumable_checkpoint() {
    let ck = scratch("abort").join("ck.bin");
    let aborted = Command::new(bin())
        .args(["--quiet", "--abort-after", "1", "--checkpoint"])
        .arg(&ck)
        .arg(bench("master_read_2.g"))
        .output()
        .expect("binary runs");
    assert_eq!(aborted.status.code(), Some(3), "{}", String::from_utf8_lossy(&aborted.stdout));
    assert!(String::from_utf8_lossy(&aborted.stdout).contains("interrupted"));
    assert!(ck.exists(), "an abort must leave a checkpoint behind");

    let resumed = Command::new(bin())
        .args(["--quiet", "--resume", "--checkpoint"])
        .arg(&ck)
        .arg(bench("master_read_2.g"))
        .output()
        .expect("binary runs");
    assert_eq!(resumed.status.code(), Some(0), "{}", String::from_utf8_lossy(&resumed.stdout));
    assert!(String::from_utf8_lossy(&resumed.stdout).contains("gate-implementable"));
}

/// Budget and fault-injection flags validate their arguments: garbage
/// is a usage error (exit 2), never a silently ignored knob.
#[test]
fn bad_budget_and_failpoint_specs_exit_2() {
    for args in [
        vec!["--timeout", "bogus"],
        vec!["--timeout", "-1"],
        vec!["--max-nodes", "many"],
        vec!["--max-steps", "few"],
        vec!["--failpoints", "no-such-point"],
        vec!["--failpoints", "store-rename=0"],
    ] {
        let out =
            Command::new(bin()).args(&args).arg(fixture("smoke.g")).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // The environment variable goes through the same validation.
    let out = Command::new(bin())
        .env("STGCHECK_FAILPOINTS", "no-such-point")
        .arg(fixture("smoke.g"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

/// An armed store-write failpoint degrades the run — the result cannot
/// be cached, which becomes a note — but the verdict and exit code are
/// untouched.
#[test]
fn armed_store_fault_degrades_without_changing_the_verdict() {
    let dir = scratch("store-fault");
    let out = Command::new(bin())
        .args(["--failpoints", "store-write", "--cache-dir"])
        .arg(&dir)
        .arg(fixture("smoke.g"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gate-implementable"), "{stdout}");
    assert!(stdout.contains("could not store result"), "{stdout}");
}

/// A reader that closes early (`stgcheck … | head`) must not panic the
/// CLI: broken-pipe write errors are swallowed and the exit code stays
/// verdict-driven.
#[test]
fn closed_stdout_pipe_does_not_panic() {
    let out = Command::new("sh")
        .arg("-c")
        .arg(format!("{} {} | head -n 1", bin().display(), fixture("smoke.g")))
        .output()
        .expect("shell runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{stderr}");
}

/// Every `--reorder` mode yields the same verdict, even when paired with
/// a deliberately bad static order; an unknown mode exits with usage.
#[test]
fn reorder_flag_accepted_and_verdict_stable() {
    for reorder in ["none", "sift", "auto"] {
        let out = Command::new(bin())
            .args(["--quiet", "--order", "declaration", "--reorder", reorder, &data("vme_read.g")])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "reorder {reorder}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("I/O-implementable"),
            "reorder {reorder}"
        );
    }
    let bad = Command::new(bin())
        .args(["--reorder", "frobnicate", &data("vme_read.g")])
        .output()
        .expect("binary runs");
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown reorder mode"));
}
