//! End-to-end test of the `stgcheck` CLI binary on the shipped `.g`
//! files: exit codes and verdict lines.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // Cargo puts integration tests and binaries in the same target dir.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // test binary name
    path.pop(); // deps/
    path.push(format!("stgcheck{}", std::env::consts::EXE_SUFFIX));
    path
}

fn data(file: &str) -> String {
    format!("{}/examples/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn handshake_file_passes() {
    let out = Command::new(bin())
        .args(["--quiet", &data("handshake.g")])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gate-implementable"), "{stdout}");
}

#[test]
fn vme_file_is_io_implementable() {
    let out = Command::new(bin())
        .args(["--quiet", &data("vme_read.g")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("I/O-implementable"), "{stdout}");
}

#[test]
fn full_report_mentions_csc_conflicts() {
    let out = Command::new(bin())
        .arg(data("vme_read.g"))
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conflict on `lds` (reducible)"), "{stdout}");
    assert!(stdout.contains("conflict on `d` (reducible)"), "{stdout}");
}

#[test]
fn mutex4_needs_arbitration_flag() {
    let strict = Command::new(bin())
        .args(["--quiet", &data("mutex4.g")])
        .output()
        .expect("binary runs");
    assert!(!strict.status.success());
    let relaxed = Command::new(bin())
        .args(["--quiet", "--arbitration", &data("mutex4.g")])
        .output()
        .expect("binary runs");
    assert!(relaxed.status.success());
    assert!(String::from_utf8_lossy(&relaxed.stdout).contains("gate-implementable"));
}

#[test]
fn irreducible_file_fails_with_si_verdict() {
    let out = Command::new(bin())
        .args(["--quiet", &data("irreducible.g")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("interface change needed"));
}

#[test]
fn missing_file_exits_2() {
    let out = Command::new(bin())
        .arg("/nonexistent/never.g")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_option_exits_2_with_usage() {
    let out = Command::new(bin()).arg("--frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn order_flag_accepted() {
    for order in ["interleaved", "places", "signals", "declaration"] {
        let out = Command::new(bin())
            .args(["--quiet", "--order", order, &data("handshake.g")])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "order {order}");
    }
}
