//! End-to-end tests of the persistent store (PR 7): checkpoint bulk
//! loading against the recursive importer on the whole checked-in
//! corpus, interrupt/resume equivalence across every engine × reorder
//! mode, warm cache hits, and incremental reverification of monotone
//! edits.

use std::path::PathBuf;

use stgcheck::bdd::BddCheckpoint;
use stgcheck::core::{
    verify, verify_persistent, CacheStatus, EngineKind, PersistOptions, ReorderMode, SymbolicStg,
    VarOrder, VerifyOptions,
};
use stgcheck::stg::{parse_g, Stg};

/// A fresh per-test scratch directory (tests share one process).
fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("stgcheck-persistence-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every net of the checked-in `benchmarks/` corpus.
fn corpus() -> Vec<Stg> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks");
    let mut out = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "g"))
        .collect();
    paths.sort();
    for path in paths {
        let source = std::fs::read_to_string(&path).unwrap();
        out.push(parse_g(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display())));
    }
    assert!(out.len() >= 5, "corpus went missing");
    out
}

fn find_root(roots: &[(String, stgcheck::bdd::Bdd)], name: &str) -> stgcheck::bdd::Bdd {
    roots.iter().find(|(n, _)| n == name).unwrap_or_else(|| panic!("root `{name}`")).1
}

/// The acceptance gate for the bulk loader: on every corpus net, the
/// level-ordered bulk import of the reached-set checkpoint must return
/// handles equal to the recursive (`mk`-descent) importer — both into
/// the exporting manager (identity) and into a fresh twin encoding.
#[test]
fn bulk_checkpoint_load_matches_recursive_import_on_corpus() {
    for stg in corpus() {
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = sym.effective_initial_code().unwrap();
        let reached = sym.traverse_engine(code).reached;
        let hash = stg.content_hash();
        let ck =
            sym.export_checkpoint(hash, &[("reached", reached)], &[("iterations".to_string(), 7)]);

        // Byte round trip of the v3 artifact.
        let ck = BddCheckpoint::from_bytes(&ck.to_bytes()).unwrap_or_else(|e| {
            panic!("{}: checkpoint round trip: {e}", stg.name());
        });
        assert_eq!(ck.net_hash, hash, "{}", stg.name());
        assert_eq!(ck.meta_value("iterations"), Some(7), "{}", stg.name());

        // Bulk into the exporting manager: the exact same handle.
        let ser = sym.manager().export_bdd(reached);
        assert_eq!(sym.manager_mut().bulk_import_bdd(&ser).unwrap(), reached, "{}", stg.name());

        // Bulk into a twin encoding equals the recursive import there.
        let mut twin = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let bulk = find_root(&twin.import_checkpoint(&ck).unwrap(), "reached");
        let recursive = twin.manager().import_bdd(&ser);
        assert_eq!(bulk, recursive, "{}", stg.name());
        assert_eq!(
            twin.manager().sat_count(bulk),
            sym.manager().sat_count(reached),
            "{}",
            stg.name()
        );
    }
}

/// Interrupt a run after one iteration, resume it, and require the final
/// reached set to be canonically equal to a scratch traversal — for all
/// four engines under all three reorder modes.
#[test]
fn interrupted_runs_resume_to_the_scratch_fixpoint() {
    let source = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks/master_read_2.g"),
    )
    .unwrap();
    let stg = parse_g(&source).unwrap();
    let base = tmp("resume");
    for kind in [
        EngineKind::PerTransition,
        EngineKind::Clustered,
        EngineKind::ParallelSharded,
        EngineKind::Saturation,
    ] {
        for reorder in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
            let tag = format!("{kind}-{reorder}");
            let cache = base.join(format!("cache-{tag}"));
            let ck_path = base.join(format!("ck-{tag}.bin"));
            let mut opts = VerifyOptions::default();
            opts.engine.kind = kind;
            opts.engine.jobs = 2;
            opts.reorder = reorder;

            let scratch = verify(&stg, opts).unwrap();

            let interrupt = PersistOptions {
                checkpoint: Some(ck_path.clone()),
                checkpoint_every: 1,
                abort_after: 1,
                ..PersistOptions::default()
            };
            let run1 = verify_persistent(&stg, opts, &interrupt).unwrap();
            assert!(run1.interrupted(), "{tag}: abort-after must interrupt");
            assert!(run1.report().is_none(), "{tag}");
            assert!(ck_path.exists(), "{tag}: interrupt must leave a checkpoint");

            let resume = PersistOptions {
                cache_dir: Some(cache.clone()),
                checkpoint: Some(ck_path.clone()),
                resume: true,
                ..PersistOptions::default()
            };
            let run2 = verify_persistent(&stg, opts, &resume).unwrap();
            assert!(!run2.interrupted(), "{tag}");
            assert!(
                run2.notes.iter().any(|n| n.contains("resumed from checkpoint")),
                "{tag}: notes = {:?}",
                run2.notes
            );
            let resumed = run2.into_report().expect("completed");
            assert_eq!(resumed.verdict, scratch.verdict, "{tag}");
            assert_eq!(resumed.num_states, scratch.num_states, "{tag}");
            assert!(!ck_path.exists(), "{tag}: converged run must delete its checkpoint");

            // The stored reached set is canonically equal to a scratch
            // traversal: import it and compare handles in one manager.
            let reached_file = std::fs::read_dir(&cache)
                .unwrap()
                .map(|e| e.unwrap().path())
                .find(|p| p.extension().is_some_and(|e| e == "reached"))
                .unwrap_or_else(|| panic!("{tag}: no stored reached set"));
            let ck = BddCheckpoint::from_bytes(&std::fs::read(reached_file).unwrap()).unwrap();
            let mut fresh = SymbolicStg::new(&stg, VarOrder::Interleaved);
            let stored = find_root(&fresh.import_checkpoint(&ck).unwrap(), "reached");
            let code = fresh.effective_initial_code().unwrap();
            let direct = fresh.traverse_engine(code).reached;
            assert_eq!(stored, direct, "{tag}: resumed reached set diverges");
        }
    }
}

/// A warm hit returns the stored verdict without a fixpoint and agrees
/// with the cold run on every reported column; a different option set is
/// a different key.
#[test]
fn warm_cache_hits_reproduce_cold_results() {
    let dir = tmp("warm");
    let persist = PersistOptions { cache_dir: Some(dir.clone()), ..PersistOptions::default() };
    for stg in corpus() {
        let opts = VerifyOptions::default();
        let cold = verify_persistent(&stg, opts, &persist).unwrap();
        assert_eq!(cold.cache, CacheStatus::Cold, "{}", stg.name());
        let warm = verify_persistent(&stg, opts, &persist).unwrap();
        assert_eq!(warm.cache, CacheStatus::Warm, "{}", stg.name());
        let (c, w) = (cold.into_report().unwrap(), warm.into_report().unwrap());
        assert_eq!(c.verdict, w.verdict, "{}", stg.name());
        assert_eq!(c.num_states, w.num_states, "{}", stg.name());
        assert_eq!(c.initial_code, w.initial_code, "{}", stg.name());
        assert_eq!(c.safety.len(), w.safety.len(), "{}", stg.name());
        assert_eq!(c.consistency.len(), w.consistency.len(), "{}", stg.name());
        assert_eq!(c.persistency.len(), w.persistency.len(), "{}", stg.name());
        assert_eq!(c.deterministic, w.deterministic, "{}", stg.name());
        assert_eq!(c.csc_holds(), w.csc_holds(), "{}", stg.name());
        assert_eq!(c.irreducible_signals, w.irreducible_signals, "{}", stg.name());

        let mut other = opts;
        other.engine.kind = EngineKind::Saturation;
        let run = verify_persistent(&stg, other, &persist).unwrap();
        assert_eq!(run.cache, CacheStatus::Cold, "{}: distinct key per engine", stg.name());
        assert_eq!(run.into_report().unwrap().verdict, c.verdict, "{}", stg.name());
    }
}

/// The cache key is the *content* hash: reformatting the `.g` source
/// (comments, blank lines, trailing spaces) still hits warm.
#[test]
fn cache_key_survives_source_reformatting() {
    let dir = tmp("reformat");
    let persist = PersistOptions { cache_dir: Some(dir), ..PersistOptions::default() };
    let source = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks/celement.g"),
    )
    .unwrap();
    let stg = parse_g(&source).unwrap();
    let cold = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert_eq!(cold.cache, CacheStatus::Cold);

    let noisy = format!("# reformatted\n\n{}", source.replace(".graph", ".graph\n# body  "));
    let reparsed = parse_g(&noisy).unwrap();
    assert_eq!(reparsed.content_hash(), stg.content_hash());
    let warm = verify_persistent(&reparsed, VerifyOptions::default(), &persist).unwrap();
    assert_eq!(warm.cache, CacheStatus::Warm);
    assert_eq!(warm.into_report().unwrap().verdict, cold.into_report().unwrap().verdict);
}

/// Version A: a plain four-phase handshake.
const INC_A: &str = "
.model incnet
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
";

/// Version B: A plus a concurrent dummy cycle — new transitions and new
/// places only, wired to nothing old: a monotone extension.
const INC_B: &str = "
.model incnet
.inputs r
.outputs a
.dummy d1 d2
.graph
r+ a+
a+ r-
r- a-
a- r+
d1 d2
d2 d1
.marking { <a-,r+> <d2,d1> }
.end
";

/// Version C: B with the dummy cycle *rewired* (an arc through a new
/// place from an old transition) — not monotone relative to B.
const INC_C: &str = "
.model incnet
.inputs r
.outputs a
.dummy d1 d2
.graph
r+ a+ d1
a+ r-
r- a-
a- r+
d1 d2
d2 d1
.marking { <a-,r+> <d2,d1> }
.end
";

/// Monotone edits seed the traversal from the predecessor's reached set
/// (`cache: incremental`) and still produce the scratch-identical
/// result; non-monotone edits fall back to scratch, never approximate.
#[test]
fn incremental_reverification_of_monotone_edits() {
    let dir = tmp("incremental");
    let persist =
        PersistOptions { cache_dir: Some(dir), incremental: true, ..PersistOptions::default() };
    let opts = VerifyOptions::default();

    let a = parse_g(INC_A).unwrap();
    let run_a = verify_persistent(&a, opts, &persist).unwrap();
    assert_eq!(run_a.cache, CacheStatus::Cold);

    let b = parse_g(INC_B).unwrap();
    let run_b = verify_persistent(&b, opts, &persist).unwrap();
    assert_eq!(run_b.cache, CacheStatus::Incremental, "notes: {:?}", run_b.notes);
    let scratch_b = verify(&b, opts).unwrap();
    let report_b = run_b.into_report().unwrap();
    assert_eq!(report_b.verdict, scratch_b.verdict);
    assert_eq!(report_b.num_states, scratch_b.num_states);
    // The dummy cycle doubles the marking space relative to A.
    assert_eq!(report_b.num_states, 2 * run_a.into_report().unwrap().num_states);

    // Unchanged B now hits warm, not incremental.
    assert_eq!(verify_persistent(&b, opts, &persist).unwrap().cache, CacheStatus::Warm);

    // C rewires an old transition: the monotone check must reject the
    // B→C edit and run from scratch.
    let c = parse_g(INC_C).unwrap();
    let run_c = verify_persistent(&c, opts, &persist).unwrap();
    assert_eq!(run_c.cache, CacheStatus::Cold, "notes: {:?}", run_c.notes);
    assert!(
        run_c.notes.iter().any(|n| n.contains("not a monotone restriction")),
        "notes: {:?}",
        run_c.notes
    );
    let scratch_c = verify(&c, opts).unwrap();
    assert_eq!(run_c.into_report().unwrap().num_states, scratch_c.num_states);
}
