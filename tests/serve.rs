//! End-to-end tests of `stgcheck serve`: protocol conformance against
//! the one-shot CLI, concurrent socket clients, cancellation, budget
//! exhaustion, crash recovery via the request journal, signal-driven
//! drains, and the serve-specific failpoints.
#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use stgcheck::core::journal::Journal;
use stgcheck::core::protocol::{parse_json, Json};
use stgcheck::stg::{gen, write_g};

fn bin() -> PathBuf {
    // Cargo puts integration tests and binaries in the same target dir.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // test binary name
    path.pop(); // deps/
    path.push(format!("stgcheck{}", std::env::consts::EXE_SUFFIX));
    path
}

fn data(file: &str) -> String {
    format!("{}/examples/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn bench(file: &str) -> String {
    format!("{}/benchmarks/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// A fresh scratch directory per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stgcheck-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a deliberately expensive net (several seconds even in release
/// builds) so a test can observe a request mid-run. Every user of this
/// net pairs it with a `timeout_s` backstop so a broken cancel path
/// fails the test instead of hanging it.
fn slow_net(dir: &Path) -> String {
    let path = dir.join("slow.g");
    std::fs::write(&path, write_g(&gen::master_read(12))).unwrap();
    path.to_string_lossy().into_owned()
}

/// A `serve` daemon speaking JSON-lines over stdin/stdout.
struct Serve {
    child: Child,
    stdin: Option<std::process::ChildStdin>,
    reader: BufReader<std::process::ChildStdout>,
}

impl Serve {
    fn spawn(args: &[&str]) -> Serve {
        let mut child = Command::new(bin())
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("serve spawns");
        let stdin = child.stdin.take().unwrap();
        let reader = BufReader::new(child.stdout.take().unwrap());
        Serve { child, stdin: Some(stdin), reader }
    }

    fn send(&mut self, line: &str) {
        let stdin = self.stdin.as_mut().expect("stdin still open");
        writeln!(stdin, "{line}").unwrap();
        stdin.flush().unwrap();
    }

    /// Reads exactly one response line and parses it.
    fn read_response(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("response line");
        assert!(n > 0, "serve closed stdout before answering");
        parse_json(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }

    /// Reads `n` response lines and indexes them by their `id` field
    /// (responses from concurrent workers interleave in any order).
    fn read_by_id(&mut self, n: usize) -> HashMap<String, Json> {
        let mut out = HashMap::new();
        for _ in 0..n {
            let v = self.read_response();
            let id = v.get("id").and_then(Json::as_str).expect("response has id").to_string();
            out.insert(id, v);
        }
        out
    }

    /// Closes stdin (EOF drain) and waits for the daemon to exit.
    fn finish(mut self) -> i32 {
        drop(self.stdin.take());
        let status = self.child.wait().expect("serve exits");
        status.code().expect("serve exit code")
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn str_field<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key).and_then(Json::as_str).unwrap_or_else(|| panic!("missing `{key}` in {v:?}"))
}

fn num_field(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_num).unwrap_or_else(|| panic!("missing `{key}` in {v:?}"))
}

fn one_shot_exit(file: &str) -> i32 {
    let out = Command::new(bin()).args(["--quiet", file]).output().expect("one-shot runs");
    out.status.code().expect("one-shot exit code")
}

/// Ping, malformed lines, unknown cancel targets, and missing ids all
/// get typed responses without disturbing the daemon; EOF drains clean.
#[test]
fn protocol_errors_are_typed_and_nonfatal() {
    let mut serve = Serve::spawn(&["--workers", "1"]);
    serve.send(r#"{"op":"ping","id":"p1"}"#);
    let pong = serve.read_response();
    assert_eq!(str_field(&pong, "status"), "ok");
    assert_eq!(str_field(&pong, "op"), "ping");
    assert_eq!(str_field(&pong, "id"), "p1");

    serve.send("this is not json");
    let bad = serve.read_response();
    assert_eq!(str_field(&bad, "status"), "error");
    assert_eq!(str_field(&bad, "reason"), "bad_request");
    assert_eq!(num_field(&bad, "exit_code"), 2.0);

    serve.send(r#"{"op":"verify","net":"x"}"#); // no id
    let no_id = serve.read_response();
    assert_eq!(str_field(&no_id, "reason"), "bad_request");

    serve.send(r#"{"op":"cancel","target":"nope"}"#);
    let cancel = serve.read_response();
    assert_eq!(str_field(&cancel, "op"), "cancel");
    assert_eq!(cancel.get("cancelled").and_then(Json::as_bool), Some(false));

    assert_eq!(serve.finish(), 0);
}

/// Serve responses agree with the one-shot CLI on verdict string and
/// exit code for every implementability class the examples cover.
#[test]
fn responses_match_one_shot_cli_verdicts() {
    let cases: &[(&str, &str, &str)] = &[
        ("handshake", &data("handshake.g"), "gate-implementable"),
        ("vme", &data("vme_read.g"), "I/O-implementable"),
        ("irreducible", &data("irreducible.g"), "interface change needed"),
    ];
    let mut serve = Serve::spawn(&["--workers", "2"]);
    for (id, path, _) in cases {
        serve.send(&format!(r#"{{"id":"{id}","net_path":"{path}"}}"#));
    }
    let responses = serve.read_by_id(cases.len());
    for (id, path, verdict) in cases {
        let resp = &responses[*id];
        assert_eq!(str_field(resp, "status"), "ok", "{id}: {resp:?}");
        assert!(str_field(resp, "verdict").contains(verdict), "{id}: {resp:?}");
        let cli = one_shot_exit(path);
        assert_eq!(num_field(resp, "exit_code") as i32, cli, "{id}: serve vs one-shot");
    }
    assert_eq!(serve.finish(), 0);
}

/// Concurrent unix-socket clients: cold runs fill the cache, an
/// identical re-request hits it warm, and duplicate in-flight requests
/// coalesce onto one computation. SIGTERM then drains the idle daemon
/// with exit 3.
#[test]
fn socket_clients_share_cache_and_coalesce() {
    let dir = scratch("socket");
    let sock = dir.join("serve.sock");
    let cache = dir.join("cache");
    let serve = Serve::spawn(&[
        "--listen",
        sock.to_str().unwrap(),
        "--workers",
        "2",
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }

    let request = |id: &str, path: &str| {
        let mut conn = std::os::unix::net::UnixStream::connect(&sock).expect("connect");
        writeln!(conn, r#"{{"id":"{id}","net_path":"{path}"}}"#).unwrap();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        parse_json(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    };

    // Two clients verifying different nets concurrently, both cold.
    let muller = bench("muller_pipeline_8.g");
    let mutex = bench("mutex_3.g");
    let cold = std::thread::scope(|s| {
        let a = s.spawn(|| request("a", &muller));
        let b = s.spawn(|| request("b", &mutex));
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(str_field(&cold.0, "cache"), "cold", "{:?}", cold.0);
    assert_eq!(str_field(&cold.1, "cache"), "cold", "{:?}", cold.1);
    assert_eq!(str_field(&cold.0, "verdict"), "gate-implementable");

    // The same request again is a warm hit with an identical verdict.
    let warm = request("a2", &muller);
    assert_eq!(str_field(&warm, "cache"), "warm", "{warm:?}");
    assert_eq!(str_field(&warm, "verdict"), str_field(&cold.0, "verdict"));

    // Two identical uncached requests in flight at once: the follower is
    // served from the leader's computation, not run twice.
    let mr3 = bench("master_read_3.g");
    let mut conn = std::os::unix::net::UnixStream::connect(&sock).expect("connect");
    writeln!(conn, r#"{{"id":"c1","net_path":"{mr3}"}}"#).unwrap();
    writeln!(conn, r#"{{"id":"c2","net_path":"{mr3}"}}"#).unwrap();
    let mut reader = BufReader::new(conn);
    let mut responses = HashMap::new();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        let v = parse_json(line.trim()).expect("json response");
        responses.insert(str_field(&v, "id").to_string(), v);
    }
    let (c1, c2) = (&responses["c1"], &responses["c2"]);
    assert_eq!(str_field(c1, "verdict"), str_field(c2, "verdict"));
    // The follower either coalesced onto the in-flight leader or (if the
    // leader finished first) hit the now-warm cache; both mean one run.
    let c2_coalesced = c2.get("coalesced").and_then(Json::as_bool) == Some(true);
    assert!(c2_coalesced || str_field(c2, "cache") == "warm", "{c2:?}");

    // An idle daemon under SIGTERM drains immediately with exit 3.
    let pid = serve.child.id().to_string();
    Command::new("kill").args(["-TERM", &pid]).status().expect("kill runs");
    let mut serve = serve;
    let deadline = Instant::now() + Duration::from_secs(30);
    let code = loop {
        if let Some(status) = serve.child.try_wait().expect("try_wait") {
            break status.code().expect("exit code");
        }
        assert!(Instant::now() < deadline, "serve did not exit after SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(code, 3);
}

/// Per-request budgets exhaust with exit code 4 exactly like the
/// one-shot CLI, and a `cancel` request interrupts a queued job without
/// disturbing its neighbours.
#[test]
fn budgets_and_cancellation_mirror_one_shot() {
    let dir = scratch("cancel");
    let slow = slow_net(&dir);
    let mr2 = bench("master_read_2.g");
    let handshake = data("handshake.g");

    let cli = Command::new(bin())
        .args(["--quiet", "--max-steps", "40", &mr2])
        .output()
        .expect("one-shot runs");
    assert_eq!(cli.status.code(), Some(4));

    let mut serve = Serve::spawn(&["--workers", "1"]);
    serve.send(&format!(r#"{{"id":"b1","net_path":"{mr2}","max_steps":40}}"#));
    serve.send(&format!(r#"{{"id":"s1","net_path":"{slow}","timeout_s":120}}"#));
    serve.send(&format!(r#"{{"id":"f1","net_path":"{handshake}"}}"#));
    serve.send(r#"{"op":"cancel","target":"s1"}"#);

    let mut responses = HashMap::new();
    while responses.len() < 3 {
        let v = serve.read_response();
        if v.get("op").and_then(Json::as_str) == Some("cancel") {
            assert_eq!(v.get("cancelled").and_then(Json::as_bool), Some(true), "{v:?}");
            continue;
        }
        responses.insert(str_field(&v, "id").to_string(), v);
    }
    let b1 = &responses["b1"];
    assert_eq!(str_field(b1, "outcome"), "exhausted", "{b1:?}");
    assert_eq!(num_field(b1, "exit_code"), 4.0);
    let s1 = &responses["s1"];
    assert_eq!(str_field(s1, "outcome"), "interrupted", "{s1:?}");
    assert_eq!(num_field(s1, "exit_code"), 3.0);
    let f1 = &responses["f1"];
    assert_eq!(str_field(f1, "verdict"), "gate-implementable", "{f1:?}");
    assert_eq!(serve.finish(), 0);
}

/// Kill -9 a daemon with accepted-but-unanswered requests; `--recover`
/// replays exactly those requests and answers them equivalently.
#[test]
fn recover_replays_unanswered_requests_after_crash() {
    let dir = scratch("recover");
    let journal = dir.join("journal");
    let slow = slow_net(&dir);
    let handshake = data("handshake.g");

    let mut serve = Serve::spawn(&["--workers", "1", "--journal", journal.to_str().unwrap()]);
    serve.send(&format!(r#"{{"id":"r1","net_path":"{slow}","timeout_s":120}}"#));
    serve.send(&format!(r#"{{"id":"r2","net_path":"{handshake}"}}"#));

    // Wait until both accepts hit the journal, then crash hard. r1 hogs
    // the only worker and r2 waits behind it, so neither is answered.
    let accepts = |dir: &PathBuf| -> usize {
        std::fs::read_dir(dir)
            .map(|d| {
                d.filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().starts_with("a-"))
                    .count()
            })
            .unwrap_or(0)
    };
    let deadline = Instant::now() + Duration::from_secs(20);
    while accepts(&journal) < 2 {
        assert!(Instant::now() < deadline, "accept records never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    serve.child.kill().expect("SIGKILL");
    let _ = serve.child.wait();
    drop(serve);

    // Recovery replays both. r2 completes on the second worker while the
    // slow r1 is cancelled through the normal protocol path.
    let mut serve =
        Serve::spawn(&["--workers", "2", "--journal", journal.to_str().unwrap(), "--recover"]);
    let r2 = serve.read_response();
    assert_eq!(str_field(&r2, "id"), "r2", "{r2:?}");
    assert_eq!(str_field(&r2, "verdict"), "gate-implementable");
    assert_eq!(num_field(&r2, "exit_code") as i32, one_shot_exit(&handshake));

    serve.send(r#"{"op":"cancel","target":"r1"}"#);
    let mut r1 = serve.read_response();
    if r1.get("op").and_then(Json::as_str) == Some("cancel") {
        assert_eq!(r1.get("cancelled").and_then(Json::as_bool), Some(true), "{r1:?}");
        r1 = serve.read_response();
    }
    assert_eq!(str_field(&r1, "id"), "r1", "{r1:?}");
    assert_eq!(str_field(&r1, "outcome"), "interrupted");

    assert_eq!(serve.finish(), 0);
    // A clean EOF drain clears the journal: nothing left to replay.
    assert_eq!(accepts(&journal), 0);
}

/// `--recover` under an armed `journal-read` failpoint skips every
/// record instead of crashing or replaying garbage; with the failpoint
/// gone, the same journal replays normally.
#[test]
fn recover_tolerates_unreadable_records() {
    let dir = scratch("corrupt");
    let journal_dir = dir.join("journal");
    let handshake = data("handshake.g");
    let mut journal = Journal::open(&journal_dir).unwrap();
    journal.record_accept("j1", &format!(r#"{{"id":"j1","net_path":"{handshake}"}}"#)).unwrap();

    // Every read fails: recovery degrades to an empty replay set.
    let serve = Serve::spawn(&[
        "--journal",
        journal_dir.to_str().unwrap(),
        "--recover",
        "--failpoints",
        "journal-read",
    ]);
    assert_eq!(serve.finish(), 0);

    // The journal survived the degraded pass; a healthy recovery answers
    // the request it holds.
    let mut serve = Serve::spawn(&["--journal", journal_dir.to_str().unwrap(), "--recover"]);
    let j1 = serve.read_response();
    assert_eq!(str_field(&j1, "id"), "j1", "{j1:?}");
    assert_eq!(str_field(&j1, "verdict"), "gate-implementable");
    assert_eq!(serve.finish(), 0);
}

/// The serve-specific failpoints: an admission fault refuses loudly and
/// recovers, a journal-write fault degrades to an annotated answer, and
/// a worker panic is isolated to one `internal_error` response.
#[test]
fn failpoints_inject_typed_degradation() {
    let handshake = data("handshake.g");

    // serve-accept: first request refused with a retryable rejection.
    let mut serve = Serve::spawn(&["--workers", "1", "--failpoints", "serve-accept=1"]);
    serve.send(&format!(r#"{{"id":"a1","net_path":"{handshake}"}}"#));
    let refused = serve.read_response();
    assert_eq!(str_field(&refused, "status"), "rejected", "{refused:?}");
    assert_eq!(str_field(&refused, "reason"), "serve_accept_fault");
    serve.send(&format!(r#"{{"id":"a2","net_path":"{handshake}"}}"#));
    let ok = serve.read_response();
    assert_eq!(str_field(&ok, "verdict"), "gate-implementable", "{ok:?}");
    assert_eq!(serve.finish(), 0);

    // journal-write: the request still runs, the response says the
    // crash protection was lost.
    let dir = scratch("jw");
    let mut serve = Serve::spawn(&[
        "--workers",
        "1",
        "--journal",
        dir.join("journal").to_str().unwrap(),
        "--failpoints",
        "journal-write=1",
    ]);
    serve.send(&format!(r#"{{"id":"w1","net_path":"{handshake}"}}"#));
    let degraded = serve.read_response();
    assert_eq!(str_field(&degraded, "status"), "ok", "{degraded:?}");
    let notes = format!("{:?}", degraded.get("notes"));
    assert!(notes.contains("journal accept failed"), "{degraded:?}");
    assert_eq!(serve.finish(), 0);

    // worker-panic: one poisoned response, the pool keeps serving.
    let mut serve = Serve::spawn(&["--workers", "1", "--failpoints", "worker-panic=1"]);
    serve.send(&format!(r#"{{"id":"p1","net_path":"{handshake}"}}"#));
    let poisoned = serve.read_response();
    assert_eq!(str_field(&poisoned, "status"), "error", "{poisoned:?}");
    assert_eq!(str_field(&poisoned, "outcome"), "internal_error");
    assert_eq!(num_field(&poisoned, "exit_code"), 5.0);
    serve.send(&format!(r#"{{"id":"p2","net_path":"{handshake}"}}"#));
    let healthy = serve.read_response();
    assert_eq!(str_field(&healthy, "verdict"), "gate-implementable", "{healthy:?}");
    assert_eq!(serve.finish(), 0);
}

/// SIGTERM mid-run: in-flight work is answered as interrupted and the
/// daemon exits 3, mirroring the one-shot CLI's signal contract.
#[test]
fn sigterm_drains_serve_with_interrupted_responses() {
    let dir = scratch("sigterm");
    let slow = slow_net(&dir);
    let mut serve = Serve::spawn(&["--workers", "1"]);
    serve.send(&format!(r#"{{"id":"s1","net_path":"{slow}","timeout_s":120}}"#));
    // Give the job time to get onto the worker before the signal.
    std::thread::sleep(Duration::from_millis(1000));
    let pid = serve.child.id().to_string();
    Command::new("kill").args(["-TERM", &pid]).status().expect("kill runs");

    let s1 = serve.read_response();
    assert_eq!(str_field(&s1, "id"), "s1", "{s1:?}");
    assert_eq!(str_field(&s1, "outcome"), "interrupted");
    assert_eq!(num_field(&s1, "exit_code"), 3.0);

    let deadline = Instant::now() + Duration::from_secs(30);
    let code = loop {
        if let Some(status) = serve.child.try_wait().expect("try_wait") {
            break status.code().expect("exit code");
        }
        assert!(Instant::now() < deadline, "serve did not exit after SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(code, 3);
}

/// SIGTERM against the one-shot CLI: cooperative interrupt, exit 3, and
/// a loadable checkpoint (proved by resuming it under a tiny budget).
#[test]
fn sigterm_interrupts_one_shot_with_valid_checkpoint() {
    let dir = scratch("oneshot-term");
    let slow = slow_net(&dir);
    let ck = dir.join("ck.bin");
    let mut child = Command::new(bin())
        .args(["--quiet", "--checkpoint"])
        .arg(&ck)
        .args(["--checkpoint-every", "1", &slow])
        .stdout(Stdio::piped())
        .spawn()
        .expect("one-shot spawns");
    // Interrupt only after the first periodic checkpoint committed, so
    // the signal provably lands mid-traversal (the net runs for several
    // seconds past that point in any build profile).
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ck.exists() {
        assert!(Instant::now() < deadline, "no periodic checkpoint appeared");
        assert!(child.try_wait().expect("try_wait").is_none(), "one-shot finished too fast");
        std::thread::sleep(Duration::from_millis(20));
    }
    Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "one-shot did not exit after SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(3));
    let mut stdout = String::new();
    child.stdout.take().unwrap().read_to_string(&mut stdout).unwrap();
    assert!(stdout.contains("interrupted"), "{stdout}");
    assert!(ck.exists(), "interrupt left no checkpoint");

    // The checkpoint loads: a resume under a tiny step budget makes
    // progress from it and exhausts (4) rather than failing to parse (2).
    let resumed = Command::new(bin())
        .args(["--quiet", "--resume", "--checkpoint"])
        .arg(&ck)
        .args(["--max-steps", "1", &slow])
        .output()
        .expect("resume runs");
    assert_eq!(resumed.status.code(), Some(4), "{}", String::from_utf8_lossy(&resumed.stdout));
}

/// `--cache-max-mb 0` is a usage error in both the one-shot CLI and
/// serve: a zero cap would evict every result it just wrote.
#[test]
fn zero_cache_cap_is_rejected() {
    let out = Command::new(bin())
        .args(["--cache-max-mb", "0", &data("handshake.g")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cache-max-mb"), "{stderr}");

    let out =
        Command::new(bin()).args(["serve", "--cache-max-mb", "0"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
