//! Image-engine equivalence suite: `PerTransition`, `Clustered`,
//! `ParallelSharded` and `Saturation` must produce the *identical*
//! `Reached` BDD (the same canonical handle in the same manager) and the
//! same state count on every benchmark family fixture, on the
//! pathological generators, and on random STGs.
//!
//! The frozen-marking traversal and the full verification pipeline are
//! covered too, so a future engine cannot drift on any of the loops it
//! drives.

mod common;

use common::{fixture, fixture_corpus, imported_corpus};
use stgcheck::core::{
    verify, EngineKind, EngineOptions, ReorderMode, ShardSharing, SymbolicStg, TraversalStrategy,
    VarOrder, VerifyOptions,
};
use stgcheck::stg::{gen, Stg};

/// Benchmark-family fixtures, the hand-imported corpus nets, plus the
/// fixtures that violate each implementability condition in isolation.
fn corpus() -> Vec<Stg> {
    let mut all = fixture_corpus();
    all.extend(imported_corpus());
    all.extend([
        gen::mutex_element(),
        gen::vme_read(),
        gen::ring(4),
        gen::csc_violation_stg(),
        gen::irreducible_csc_stg(),
        gen::nonpersistent_stg(),
        gen::fig3_d1(),
        gen::fig3_d2(),
    ]);
    all
}

/// Every engine configuration under test. `jobs: 2` forces genuine
/// sharding even on single-CPU hosts.
fn engines() -> Vec<(&'static str, EngineOptions)> {
    vec![
        ("per-transition/chained", EngineOptions::default()),
        (
            "per-transition/bfs",
            EngineOptions { strategy: TraversalStrategy::Bfs, ..Default::default() },
        ),
        ("clustered", EngineOptions { kind: EngineKind::Clustered, ..Default::default() }),
        (
            "clustered/cap1",
            EngineOptions { kind: EngineKind::Clustered, max_cluster: 1, ..Default::default() },
        ),
        (
            "parallel/shared/2",
            EngineOptions { kind: EngineKind::ParallelSharded, jobs: 2, ..Default::default() },
        ),
        (
            "parallel/shared/4",
            EngineOptions { kind: EngineKind::ParallelSharded, jobs: 4, ..Default::default() },
        ),
        (
            "parallel/private/2",
            EngineOptions {
                kind: EngineKind::ParallelSharded,
                jobs: 2,
                sharing: ShardSharing::Private,
                ..Default::default()
            },
        ),
        (
            "parallel/private/4",
            EngineOptions {
                kind: EngineKind::ParallelSharded,
                jobs: 4,
                sharing: ShardSharing::Private,
                ..Default::default()
            },
        ),
        ("saturation", EngineOptions { kind: EngineKind::Saturation, ..Default::default() }),
        (
            "saturation/cap1",
            EngineOptions { kind: EngineKind::Saturation, max_cluster: 1, ..Default::default() },
        ),
    ]
}

#[test]
fn engines_agree_on_reached_for_every_family() {
    for stg in corpus() {
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = sym.effective_initial_code().unwrap();
        let base = sym.traverse_with_engine(code, &EngineOptions::default());
        for (name, opts) in engines() {
            let t = sym.traverse_with_engine(code, &opts);
            // Canonicity: the same set must be the same handle.
            assert_eq!(t.reached, base.reached, "{}: {name} reached differs", stg.name());
            assert_eq!(
                t.stats.num_states,
                base.stats.num_states,
                "{}: {name} state count differs",
                stg.name()
            );
            assert_eq!(
                t.stats.final_nodes,
                base.stats.final_nodes,
                "{}: {name} final BDD size differs",
                stg.name()
            );
        }
    }
}

#[test]
fn engines_agree_on_random_stgs() {
    for seed in 0..25u64 {
        let stg = gen::random_safe_stg(seed);
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = sym.effective_initial_code().unwrap();
        let base = sym.traverse_with_engine(code, &EngineOptions::default());
        for (name, opts) in engines() {
            let t = sym.traverse_with_engine(code, &opts);
            assert_eq!(t.reached, base.reached, "seed {seed}: {name}");
            assert_eq!(t.stats.num_states, base.stats.num_states, "seed {seed}: {name}");
        }
    }
}

#[test]
fn engines_agree_on_frozen_marking_traversal() {
    // The Section 5.1 building block (initial-code inference) runs
    // through the same engine loop: freeze each signal in turn and
    // compare the frozen reachable-marking sets across engines.
    for stg in [fixture("muller_pipeline_4.g"), fixture("mutex_3.g"), gen::vme_read()] {
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        for s in stg.signals() {
            sym.set_engine(EngineOptions::default());
            let base = sym.traverse_markings_frozen(&[s]);
            for (name, opts) in engines() {
                sym.set_engine(opts);
                let frozen = sym.traverse_markings_frozen(&[s]);
                assert_eq!(
                    frozen,
                    base,
                    "{} frozen({}) differs under {name}",
                    stg.name(),
                    stg.signal_name(s)
                );
            }
        }
    }
}

#[test]
fn full_verification_verdicts_are_engine_independent() {
    for stg in corpus() {
        let base = verify(&stg, VerifyOptions::default()).unwrap();
        for kind in [EngineKind::Clustered, EngineKind::ParallelSharded, EngineKind::Saturation] {
            let opts = VerifyOptions {
                engine: EngineOptions { kind, jobs: 2, ..Default::default() },
                ..VerifyOptions::default()
            };
            let report = verify(&stg, opts).unwrap();
            assert_eq!(report.verdict, base.verdict, "{}: {kind}", stg.name());
            assert_eq!(report.num_states, base.num_states, "{}: {kind}", stg.name());
            assert_eq!(report.bdd_final, base.bdd_final, "{}: {kind}", stg.name());
            assert_eq!(report.safe(), base.safe(), "{}: {kind}", stg.name());
            assert_eq!(report.consistent(), base.consistent(), "{}: {kind}", stg.name());
            assert_eq!(report.persistent(), base.persistent(), "{}: {kind}", stg.name());
            assert_eq!(report.csc_holds(), base.csc_holds(), "{}: {kind}", stg.name());
            assert_eq!(
                report.irreducible_signals,
                base.irreducible_signals,
                "{}: {kind}",
                stg.name()
            );
            assert_eq!(report.engine, kind.to_string(), "{}", stg.name());
        }
    }
}

/// Every engine × `--reorder` mode must reach the identical verification
/// verdict and state count. `jobs: 2` forces genuine sharding for the
/// parallel engine, which under `sift`/`auto` also exercises the
/// mid-fixpoint order broadcast to the workers. Only the BDD *sizes* may
/// differ across modes — a reorder changes the graph, never the set.
#[test]
fn verdicts_and_counts_are_reorder_independent() {
    for stg in corpus() {
        let base = verify(&stg, VerifyOptions::default()).unwrap();
        for kind in [
            EngineKind::PerTransition,
            EngineKind::Clustered,
            EngineKind::ParallelSharded,
            EngineKind::Saturation,
        ] {
            for reorder in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
                let opts = VerifyOptions {
                    engine: EngineOptions { kind, jobs: 2, ..Default::default() },
                    reorder,
                    ..VerifyOptions::default()
                };
                let report = verify(&stg, opts).unwrap();
                let ctx = format!("{}: {kind} + reorder {reorder}", stg.name());
                assert_eq!(report.verdict, base.verdict, "{ctx}");
                assert_eq!(report.num_states, base.num_states, "{ctx}");
                assert_eq!(report.safe(), base.safe(), "{ctx}");
                assert_eq!(report.consistent(), base.consistent(), "{ctx}");
                assert_eq!(report.persistent(), base.persistent(), "{ctx}");
                assert_eq!(report.fake_free(), base.fake_free(), "{ctx}");
                assert_eq!(report.csc_holds(), base.csc_holds(), "{ctx}");
                assert_eq!(report.irreducible_signals, base.irreducible_signals, "{ctx}");
                if reorder == ReorderMode::Sift {
                    assert!(report.sift_passes > 0, "{ctx}: sift mode must run passes");
                }
            }
        }
    }
}

/// The tentpole lock-down for the saturation engine: the full four-engine
/// matrix — every engine × `--reorder {none,sift,auto}`, and for the
/// parallel engine additionally × `--sharing {shared,private}` — must
/// produce the *identical* `Reached` handle and state count on every
/// benchmark family and on random safe STGs.
///
/// A sifting run garbage-collects everything outside its own roots, so a
/// reference handle from *before* the sift would dangle; instead the
/// per-transition reference is recomputed right after each configuration
/// in the same manager, where handle equality is exactly function
/// equality under the then-current order.
#[test]
fn four_engine_reorder_sharing_matrix_agrees_on_reached() {
    let mut nets = fixture_corpus();
    nets.extend(imported_corpus());
    nets.extend((0..10u64).map(gen::random_safe_stg));
    for stg in nets {
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = sym.effective_initial_code().unwrap();
        let states = sym.traverse_with_engine(code, &EngineOptions::default()).stats.num_states;
        for kind in [
            EngineKind::PerTransition,
            EngineKind::Clustered,
            EngineKind::ParallelSharded,
            EngineKind::Saturation,
        ] {
            let sharings: &[ShardSharing] = if kind == EngineKind::ParallelSharded {
                &[ShardSharing::Shared, ShardSharing::Private]
            } else {
                &[ShardSharing::Shared]
            };
            for reorder in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
                for &sharing in sharings {
                    let opts =
                        EngineOptions { kind, jobs: 2, reorder, sharing, ..Default::default() };
                    let t = sym.traverse_with_engine(code, &opts);
                    let base = sym.traverse_with_engine(code, &EngineOptions::default());
                    let ctx = format!("{}: {kind} reorder {reorder} sharing {sharing}", stg.name());
                    assert_eq!(t.reached, base.reached, "{ctx}: reached handle differs");
                    assert_eq!(t.stats.num_states, states, "{ctx}: state count differs");
                }
            }
        }
    }
}

#[test]
fn worker_peaks_are_reported_by_private_sharding_only() {
    let stg = gen::muller_pipeline(8);
    let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let private = EngineOptions {
        kind: EngineKind::ParallelSharded,
        jobs: 2,
        sharing: ShardSharing::Private,
        ..Default::default()
    };
    let t = sym.traverse_with_engine(code, &private);
    assert!(t.stats.worker_peak_nodes > 0, "private sharding must report worker peaks");
    // With the shared manager there are no worker managers: every node
    // the workers build shows up in the main peak instead.
    let shared = EngineOptions { kind: EngineKind::ParallelSharded, jobs: 2, ..Default::default() };
    let t = sym.traverse_with_engine(code, &shared);
    assert_eq!(t.stats.worker_peak_nodes, 0, "shared sharding has no separate worker peak");
    assert!(t.stats.peak_nodes > 0);
    // Sequential engines leave the worker column at zero.
    let seq = sym.traverse(code, TraversalStrategy::Chained);
    assert_eq!(seq.stats.worker_peak_nodes, 0);
}

/// The acceptance gate of the shared-table rework: shared-manager
/// parallel must agree with `per-transition` (and with private-manager
/// parallel) on the state count and full verdict for every net in
/// `benchmarks/`, across `--reorder none|auto`.
#[test]
fn shared_and_private_parallel_agree_on_benchmark_corpus() {
    let mut corpus = fixture_corpus();
    corpus.extend(imported_corpus());
    for stg in corpus {
        for reorder in [ReorderMode::None, ReorderMode::Auto] {
            let base = verify(&stg, VerifyOptions { reorder, ..VerifyOptions::default() }).unwrap();
            for sharing in [ShardSharing::Shared, ShardSharing::Private] {
                let opts = VerifyOptions {
                    engine: EngineOptions {
                        kind: EngineKind::ParallelSharded,
                        jobs: 2,
                        sharing,
                        ..Default::default()
                    },
                    reorder,
                    ..VerifyOptions::default()
                };
                let report = verify(&stg, opts).unwrap();
                let ctx = format!("{}: parallel/{sharing} reorder {reorder}", stg.name());
                assert_eq!(report.num_states, base.num_states, "{ctx}");
                assert_eq!(report.verdict, base.verdict, "{ctx}");
                assert_eq!(report.safe(), base.safe(), "{ctx}");
                assert_eq!(report.consistent(), base.consistent(), "{ctx}");
                assert_eq!(report.persistent(), base.persistent(), "{ctx}");
                assert_eq!(report.csc_holds(), base.csc_holds(), "{ctx}");
            }
        }
    }
}
