//! Witness quality: every violated property must come with a decoded
//! counter-example that actually exhibits the violation.

use stgcheck::core::{verify, SymbolicStg, TraversalStrategy, VarOrder, VerifyOptions};
use stgcheck::stg::gen;
use stgcheck::stg::{Polarity, SignalId};

#[test]
fn consistency_witness_is_a_real_state() {
    let stg = gen::inconsistent_stg();
    let report = verify(&stg, VerifyOptions::default()).unwrap();
    assert!(!report.consistent());
    let v = &report.consistency[0];
    // The witness enables the violating edge at the wrong value.
    let bit = v.witness.code.as_bytes()[v.signal.index()] as char;
    match v.polarity {
        Polarity::Rise => assert_eq!(bit, '1'),
        Polarity::Fall => assert_eq!(bit, '0'),
    }
    assert!(!v.witness.marked_places.is_empty());
}

#[test]
fn persistency_witness_enables_both_sides() {
    let stg = gen::nonpersistent_stg();
    let report = verify(&stg, VerifyOptions::default()).unwrap();
    assert!(!report.persistent());
    let net = stg.net();
    for v in &report.persistency {
        // Reconstruct the witness marking and check the disabled signal
        // really is enabled there and disabled after firing.
        let mut marking = net.initial_marking();
        for p in net.places() {
            marking.set_tokens(p, 0);
        }
        for name in &v.witness.marked_places {
            let p = net.place_by_name(name).expect("witness names real places");
            marking.set_tokens(p, 1);
        }
        let enabled_signal = |m: &stgcheck::petri::Marking, s: SignalId| {
            stg.transitions_of_signal(s).iter().any(|&t| net.is_enabled(t, m))
        };
        assert!(enabled_signal(&marking, v.disabled), "before firing");
        assert!(net.is_enabled(v.fired, &marking), "disabler enabled");
        let after = net.fire(v.fired, &marking);
        assert!(!enabled_signal(&after, v.disabled), "after firing");
    }
}

#[test]
fn csc_witness_code_is_contradictory() {
    let stg = gen::vme_read();
    let report = verify(&stg, VerifyOptions::default()).unwrap();
    assert!(!report.csc_holds());
    let analysis = report.csc.iter().find(|a| !a.holds).expect("a violation exists");
    let w = analysis.witness.as_ref().expect("witness attached");
    // The witness is a pure code (places abstracted): every signal bit is
    // assigned, no place is mentioned.
    assert!(w.marked_places.is_empty());
    assert_eq!(w.code.len(), stg.num_signals());
    assert!(w.code.chars().all(|c| c == '0' || c == '1' || c == '-'));
}

#[test]
fn safety_witness_marks_the_offending_place() {
    let stg = gen::unsafe_stg();
    let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let t = sym.traverse(code, TraversalStrategy::Chained);
    let violations = sym.check_safeness(t.reached);
    assert!(!violations.is_empty());
    for v in &violations {
        let place_name = stg.net().place_name(v.place).to_string();
        assert!(
            v.witness.marked_places.contains(&place_name),
            "witness must show `{place_name}` already marked"
        );
    }
}

#[test]
fn transition_persistency_witness_round_trips() {
    let stg = gen::mutex_element();
    let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let t = sym.traverse(code, TraversalStrategy::Chained);
    let r_n = sym.project_markings(t.reached);
    let tv = sym.check_transition_persistency(r_n);
    assert_eq!(tv.len(), 2);
    let net = stg.net();
    for v in &tv {
        let mut marking = net.initial_marking();
        for p in net.places() {
            marking.set_tokens(p, 0);
        }
        for name in &v.witness.marked_places {
            marking.set_tokens(net.place_by_name(name).unwrap(), 1);
        }
        assert!(net.is_enabled(v.disabled, &marking));
        assert!(net.is_enabled(v.fired, &marking));
        let after = net.fire(v.fired, &marking);
        assert!(!net.is_enabled(v.disabled, &after));
    }
}
