//! Threaded stress suite for the shared concurrent BDD substrate
//! (`docs/concurrent-table.md`).
//!
//! Strategy: determinism through canonicity. Every test drives one
//! shared [`BddManager`] from N threads with pre-generated random op
//! scripts, then replays the same scripts on a fresh single-threaded
//! manager with the same variable declarations. Canonical handles differ
//! between the two managers (creation order differs), but the *functions*
//! must be identical — and [`BddManager::export_bdd`] snapshots are
//! canonical per (function, variable order), so comparing snapshots is a
//! node-for-node structural check, not just a state count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stgcheck::bdd::{Bdd, BddManager, SerializedBdd, Var};
use stgcheck::core::{
    verify, EngineKind, EngineOptions, ExecMode, ReorderMode, SymbolicStg, VarOrder, VerifyOptions,
};
use stgcheck::stg::{gen, Stg};

/// One scripted operation; operands index the thread's result history
/// (literals are pre-seeded at indices `0..2 * nvars`).
#[derive(Clone, Copy, Debug)]
enum Op {
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Diff(usize, usize),
    Not(usize),
    Ite(usize, usize, usize),
    /// `∃ vars(mask) . pool[i]`
    Exists(usize, u16),
    /// `∀ vars(mask) . pool[i]`
    Forall(usize, u16),
    /// `and_exists(pool[i], pool[j], vars(mask))`
    AndExists(usize, usize, u16),
}

const NVARS: usize = 12;

fn gen_script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut script = Vec::with_capacity(len);
    // `pool` tracks how many results exist when each op runs: the
    // literal seeds of both polarities, plus one per prior op.
    for pool in 2 * NVARS..2 * NVARS + len {
        let pick = |rng: &mut StdRng, pool: usize| rng.gen_range(0..pool);
        let mask = |rng: &mut StdRng| rng.gen_range(1u16..(1 << NVARS.min(16)) as u16);
        let op = match rng.gen_range(0..9u32) {
            0 => Op::And(pick(&mut rng, pool), pick(&mut rng, pool)),
            1 => Op::Or(pick(&mut rng, pool), pick(&mut rng, pool)),
            2 => Op::Xor(pick(&mut rng, pool), pick(&mut rng, pool)),
            3 => Op::Diff(pick(&mut rng, pool), pick(&mut rng, pool)),
            4 => Op::Not(pick(&mut rng, pool)),
            5 => Op::Ite(pick(&mut rng, pool), pick(&mut rng, pool), pick(&mut rng, pool)),
            6 => Op::Exists(pick(&mut rng, pool), mask(&mut rng)),
            7 => Op::Forall(pick(&mut rng, pool), mask(&mut rng)),
            _ => Op::AndExists(pick(&mut rng, pool), pick(&mut rng, pool), mask(&mut rng)),
        };
        script.push(op);
    }
    script
}

/// Runs a script against the manager through `&self` only — exactly what
/// a shared-mode engine worker is allowed to do.
fn run_script(m: &BddManager, vars: &[Var], script: &[Op], from: &[Bdd]) -> Vec<Bdd> {
    let cube = |mask: u16| -> Bdd {
        let vs: Vec<Var> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &v)| v)
            .collect();
        m.vars_cube(&vs)
    };
    let mut pool: Vec<Bdd> = from.to_vec();
    for &op in script {
        let r = match op {
            Op::And(i, j) => m.and(pool[i], pool[j]),
            Op::Or(i, j) => m.or(pool[i], pool[j]),
            Op::Xor(i, j) => m.xor(pool[i], pool[j]),
            Op::Diff(i, j) => m.diff(pool[i], pool[j]),
            Op::Not(i) => m.not(pool[i]),
            Op::Ite(i, j, k) => m.ite(pool[i], pool[j], pool[k]),
            Op::Exists(i, mask) => m.exists(pool[i], cube(mask)),
            Op::Forall(i, mask) => m.forall(pool[i], cube(mask)),
            Op::AndExists(i, j, mask) => m.and_exists(pool[i], pool[j], cube(mask)),
        };
        pool.push(r);
    }
    pool
}

fn fresh_manager() -> (BddManager, Vec<Var>, Vec<Bdd>) {
    let mut m = BddManager::new();
    let vars = m.new_vars("x", NVARS);
    let mut seeds: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    seeds.extend(vars.iter().map(|&v| m.nvar(v)));
    (m, vars, seeds)
}

/// Snapshot of every function a script produced, in a manager-independent
/// canonical form.
fn snapshots(m: &BddManager, results: &[Bdd]) -> Vec<SerializedBdd> {
    results.iter().map(|&r| m.export_bdd(r)).collect()
}

/// The headline stress test: N threads hammer one manager with random op
/// mixes; every thread's results must be node-for-node identical to a
/// single-threaded replay of the same scripts in a fresh manager.
#[test]
fn threaded_random_ops_match_single_threaded_replay() {
    const THREADS: usize = 4;
    const LEN: usize = 400;
    let scripts: Vec<Vec<Op>> =
        (0..THREADS).map(|t| gen_script(0xC0FFEE + t as u64, LEN)).collect();

    let (mut shared, vars, seeds) = fresh_manager();
    let shared_results: Vec<Vec<Bdd>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let (m, vars, seeds) = (&shared, &vars, &seeds);
                scope.spawn(move || run_script(m, vars, script, seeds))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress worker panicked")).collect()
    });
    shared.check_invariants();

    let (mut replay, rvars, rseeds) = fresh_manager();
    for (script, shared_pool) in scripts.iter().zip(&shared_results) {
        let replay_pool = run_script(&replay, &rvars, script, &rseeds);
        assert_eq!(
            snapshots(&shared, shared_pool),
            snapshots(&replay, &replay_pool),
            "threaded results diverge from the sequential replay"
        );
    }
    replay.check_invariants();
}

/// Canonicity under contention: threads computing the *same* script
/// through one manager must observe bit-identical handles — the
/// lock-sharded unique table may never hand out two slots for one
/// function, no matter how the threads interleave.
#[test]
fn racing_threads_agree_on_canonical_handles() {
    const THREADS: usize = 8;
    let script = gen_script(0xBDD, 500);
    let (mut shared, vars, seeds) = fresh_manager();
    let results: Vec<Vec<Bdd>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (m, vars, seeds, script) = (&shared, &vars, &seeds, &script);
                scope.spawn(move || run_script(m, vars, script, seeds))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress worker panicked")).collect()
    });
    for other in &results[1..] {
        assert_eq!(&results[0], other, "racing threads disagree on canonical handles");
    }
    shared.check_invariants();
}

/// Boolean identities checked *while* other threads churn the same
/// manager: a torn cache entry or a duplicated node would break one of
/// these algebraic facts.
#[test]
fn algebraic_identities_hold_under_contention() {
    let (mut shared, vars, seeds) = fresh_manager();
    std::thread::scope(|scope| {
        // Churn threads keep the unique table and caches busy.
        for t in 0..2u64 {
            let (m, vars, seeds) = (&shared, &vars, &seeds);
            let script = gen_script(0xABAD1DEA + t, 600);
            scope.spawn(move || run_script(m, vars, &script, seeds));
        }
        // Checker threads verify identities on their own random functions.
        for t in 0..2u64 {
            let (m, vars, seeds) = (&shared, &vars, &seeds);
            scope.spawn(move || {
                let script = gen_script(0x5EED + t, 300);
                let pool = run_script(m, vars, &script, seeds);
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..300 {
                    let f = pool[rng.gen_range(0..pool.len())];
                    let g = pool[rng.gen_range(0..pool.len())];
                    let c = m.vars_cube(&vars[0..rng.gen_range(1..4usize)]);
                    // De Morgan through the shared caches.
                    let lhs = m.not(m.and(f, g));
                    let rhs = m.or(m.not(f), m.not(g));
                    assert_eq!(lhs, rhs, "De Morgan broke under contention");
                    // Complementation / excluded middle.
                    assert_eq!(m.and(f, m.not(f)), Bdd::FALSE);
                    assert_eq!(m.or(f, m.not(f)), Bdd::TRUE);
                    // Fused relational product vs the unfused pipeline.
                    let fused = m.and_exists(f, g, c);
                    let unfused = m.exists(m.and(f, g), c);
                    assert_eq!(fused, unfused, "and_exists diverged under contention");
                }
            });
        }
    });
    shared.check_invariants();
}

/// The engine's quiesce protocol in miniature: concurrent phases
/// separated by stop-the-world GC (and finally sifting) on the shared
/// manager. Handles kept as roots must stay valid across the quiesce
/// points, and the functions must still match a replay that never
/// collected at all.
#[test]
fn quiesce_gc_between_concurrent_phases_preserves_functions() {
    const THREADS: usize = 3;
    const PHASES: usize = 3;
    let all_scripts: Vec<Vec<Vec<Op>>> = (0..PHASES)
        .map(|p| (0..THREADS).map(|t| gen_script((p * 31 + t) as u64 + 7, 150)).collect())
        .collect();

    let (mut shared, vars, seeds) = fresh_manager();
    // Each thread's pool persists across phases, GC-protected as roots.
    let mut pools: Vec<Vec<Bdd>> = vec![seeds.clone(); THREADS];
    for phase_scripts in &all_scripts {
        let results: Vec<Vec<Bdd>> = std::thread::scope(|scope| {
            let handles: Vec<_> = phase_scripts
                .iter()
                .zip(&pools)
                .map(|(script, pool)| {
                    let (m, vars) = (&shared, &vars);
                    scope.spawn(move || run_script(m, vars, script, pool))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("phase worker panicked")).collect()
        });
        pools = results;
        // Stop-the-world quiesce: all workers joined, `&mut` is back.
        let roots: Vec<Bdd> = pools.iter().flatten().copied().collect();
        shared.gc(&roots);
        shared.check_invariants();
    }

    // Replay without any GC: functions must agree node-for-node.
    let (replay, rvars, rseeds) = fresh_manager();
    let mut rpools: Vec<Vec<Bdd>> = vec![rseeds.clone(); THREADS];
    for phase_scripts in &all_scripts {
        rpools = phase_scripts
            .iter()
            .zip(&rpools)
            .map(|(script, pool)| run_script(&replay, &rvars, script, pool))
            .collect();
    }
    for (sp, rp) in pools.iter().zip(&rpools) {
        assert_eq!(snapshots(&shared, sp), snapshots(&replay, rp), "quiesce GC corrupted a pool");
    }

    // And a final in-place sift on the shared manager must preserve every
    // function semantically (sat counts are order-independent).
    let roots: Vec<Bdd> = pools.iter().flatten().copied().collect();
    shared.sift(&roots);
    shared.check_invariants();
    for (sp, rp) in pools.iter().zip(&rpools) {
        for (&f, &g) in sp.iter().zip(rp) {
            assert_eq!(shared.sat_count(f), replay.sat_count(g), "sift changed a function");
        }
    }
}

// ---------------------------------------------------------------------
// Exclusive-mode fast path vs shared-mode atomic path.
// ---------------------------------------------------------------------

fn mode_corpus() -> Vec<Stg> {
    vec![
        gen::mutex_element(),
        gen::muller_pipeline(4),
        gen::vme_read(),
        gen::ring(4),
        gen::csc_violation_stg(),
        gen::nonpersistent_stg(),
    ]
}

const ALL_KINDS: [EngineKind; 4] = [
    EngineKind::PerTransition,
    EngineKind::Clustered,
    EngineKind::ParallelSharded,
    EngineKind::Saturation,
];

/// `--exec` is pure execution strategy: for every engine × reorder mode,
/// a `jobs == 1` run on the exclusive (`&mut`, plain-store) fast path, a
/// `jobs == 1` run pinned to the shared (atomic-publication) path, and a
/// `jobs == 2` run must agree on every verdict and state count — and the
/// two single-job runs, which execute the *identical* recursion sequence,
/// must match on every BDD size column as well.
#[test]
fn exclusive_and_shared_modes_agree_across_engines_and_reorders() {
    for stg in mode_corpus() {
        for kind in ALL_KINDS {
            for reorder in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
                let with = |jobs: usize, exec: ExecMode| VerifyOptions {
                    engine: EngineOptions { kind, jobs, exec, ..Default::default() },
                    reorder,
                    ..VerifyOptions::default()
                };
                let ctx = format!("{}: {kind} + reorder {reorder}", stg.name());
                // jobs == 1 resolves ExecMode::Auto to the exclusive path.
                let excl = verify(&stg, with(1, ExecMode::Auto)).unwrap();
                let shared = verify(&stg, with(1, ExecMode::Shared)).unwrap();
                let multi = verify(&stg, with(2, ExecMode::Auto)).unwrap();
                for (label, other) in [("shared", &shared), ("jobs=2", &multi)] {
                    assert_eq!(excl.verdict, other.verdict, "{ctx}: {label} verdict");
                    assert_eq!(excl.num_states, other.num_states, "{ctx}: {label} states");
                    assert_eq!(excl.safe(), other.safe(), "{ctx}: {label} safety");
                    assert_eq!(excl.consistent(), other.consistent(), "{ctx}: {label}");
                    assert_eq!(excl.persistent(), other.persistent(), "{ctx}: {label}");
                    assert_eq!(excl.csc_holds(), other.csc_holds(), "{ctx}: {label} CSC");
                }
                // Same engine, same jobs, same recursion order: the two
                // paths must walk byte-identical manager trajectories.
                assert_eq!(excl.bdd_peak, shared.bdd_peak, "{ctx}: peak diverged");
                assert_eq!(excl.bdd_final, shared.bdd_final, "{ctx}: final size diverged");
                assert_eq!(excl.sift_passes, shared.sift_passes, "{ctx}: sift passes diverged");
            }
        }
    }
}

/// Canonicity across execution modes in ONE manager: running the same
/// traversal once through the exclusive entry points and once through the
/// shared ones must return the *identical* `Reached` handle — both paths
/// feed the same unique table, so a single node difference would be a
/// canonicity bug, not a perf quirk.
#[test]
fn exclusive_mode_reaches_identical_handles() {
    for stg in mode_corpus() {
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = sym.effective_initial_code().unwrap();
        for kind in ALL_KINDS {
            for jobs in [1usize, 2] {
                let with =
                    |exec: ExecMode| EngineOptions { kind, jobs, exec, ..EngineOptions::default() };
                let e = sym.traverse_with_engine(code, &with(ExecMode::Exclusive));
                let s = sym.traverse_with_engine(code, &with(ExecMode::Shared));
                assert_eq!(
                    e.reached,
                    s.reached,
                    "{}: {kind} jobs={jobs} exec modes returned different handles",
                    stg.name()
                );
                assert_eq!(e.stats.num_states, s.stats.num_states);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Generational GC vs the whole-graph full-mark reference.
// ---------------------------------------------------------------------

/// Generational stress: threaded phases allocate, a random subset of each
/// phase's results is dropped, and the shared manager collects with the
/// generational `gc` dispatch (full first, then minors). A sequential
/// reference replay collects with `gc_full` — the whole-graph mark — at
/// every quiesce point. Minor collections may conservatively retain dead
/// *old* nodes between full collections, but a closing full collection on
/// both managers must converge to the exact same live count, and every
/// kept function must match the reference node-for-node.
#[test]
fn generational_gc_tracks_the_full_mark_reference() {
    const THREADS: usize = 3;
    const PHASES: usize = 6;
    let all_scripts: Vec<Vec<Vec<Op>>> = (0..PHASES)
        .map(|p| (0..THREADS).map(|t| gen_script((p * 97 + t) as u64 + 11, 120)).collect())
        .collect();

    let (mut m1, vars1, seeds1) = fresh_manager();
    let (m2, vars2, seeds2) = fresh_manager();
    let mut rng = StdRng::seed_from_u64(0xD00D);
    // The surviving root set after each phase, index-aligned between the
    // managers (same scripts, same drops ⇒ same functions).
    let mut from1 = seeds1.clone();
    let mut from2 = seeds2.clone();
    for phase_scripts in &all_scripts {
        let results1: Vec<Vec<Bdd>> = std::thread::scope(|scope| {
            let handles: Vec<_> = phase_scripts
                .iter()
                .map(|script| {
                    let (m, vars, from) = (&m1, &vars1, &from1);
                    scope.spawn(move || run_script(m, vars, script, from))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("gc stress worker panicked")).collect()
        });
        let results2: Vec<Vec<Bdd>> =
            phase_scripts.iter().map(|s| run_script(&m2, &vars2, s, &from2)).collect();

        // Drop ~half of each thread's results; the literal seeds always
        // survive so later phases can keep indexing them.
        let keep: Vec<Vec<usize>> = results1
            .iter()
            .map(|pool| (seeds1.len()..pool.len()).filter(|_| rng.gen_bool(0.5)).collect())
            .collect();
        from1 = seeds1.clone();
        from2 = seeds2.clone();
        for (t, kept) in keep.iter().enumerate() {
            from1.extend(kept.iter().map(|&i| results1[t][i]));
            from2.extend(kept.iter().map(|&i| results2[t][i]));
        }

        // m1: generational dispatch at the quiesce point (one full, then
        // minors). m2, the reference, collects nothing until the end.
        m1.gc(&from1);
        m1.check_invariants();
    }
    let mut m2 = m2;
    // m2 never collected above, so one closing full mark brings it to the
    // minimal live set; the same full mark on m1 must land on the
    // identical count — generational collection may only *defer*
    // reclamation, never change it.
    m1.gc_full(&from1);
    m2.gc_full(&from2);
    assert_eq!(
        m1.live_nodes(),
        m2.live_nodes(),
        "generational GC and the full-mark reference disagree on the surviving set"
    );
    let stats = m1.stats();
    assert!(
        stats.gc_runs > stats.gc_full_runs,
        "dispatch never took a minor collection (runs {}, full {})",
        stats.gc_runs,
        stats.gc_full_runs
    );
    m1.check_invariants();
    m2.check_invariants();
    // Node-for-node: every surviving function matches the reference.
    assert_eq!(snapshots(&m1, &from1), snapshots(&m2, &from2), "a kept root diverged");
}
