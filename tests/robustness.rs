//! Resource governance and graceful degradation (see
//! `docs/robustness.md`): budget exhaustion at arbitrary points resumes
//! to the scratch-identical verdict on every engine × reorder mode, the
//! `--fallback` ladder completes runs the plain budget rejects, external
//! cancellation interrupts promptly, and every armed failpoint yields a
//! typed error or a clean cold-path recompute — never a panic, a wrong
//! verdict, or an accepted partial artifact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use stgcheck::core::{
    failpoint, verify, verify_persistent, BudgetSpec, CacheStatus, EngineKind, PersistOptions,
    ReorderMode, ResourceError, VerifyError, VerifyOptions,
};
use stgcheck::stg::{parse_g, Stg};

/// A fresh per-test scratch directory (tests share one process).
fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("stgcheck-robustness-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench_net(file: &str) -> Stg {
    let source = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks").join(file),
    )
    .unwrap();
    parse_g(&source).unwrap()
}

/// The tentpole acceptance test: interrupt *anywhere* — a ladder of
/// deterministic allocation-step budgets trips the run at a different
/// point each rung — then resume with the budget lifted and require the
/// verdict and state count to be identical to an unbudgeted scratch run.
/// All four engines under all three reorder modes.
#[test]
fn budget_trips_anywhere_resume_to_the_scratch_verdict() {
    let stg = bench_net("master_read_2.g");
    let base = tmp("interrupt-anywhere");
    for kind in [
        EngineKind::PerTransition,
        EngineKind::Clustered,
        EngineKind::ParallelSharded,
        EngineKind::Saturation,
    ] {
        for reorder in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
            let tag = format!("{kind}-{reorder}");
            let mut opts = VerifyOptions::default();
            opts.engine.kind = kind;
            opts.engine.jobs = 2;
            opts.reorder = reorder;
            let scratch = verify(&stg, opts).unwrap();

            let mut exhausted_rungs = 0;
            for max_steps in [150u64, 400, 1000, 2500, 6000, 20000] {
                let ck_path = base.join(format!("ck-{tag}-{max_steps}.bin"));
                let mut budgeted = opts;
                budgeted.budget = BudgetSpec { max_steps, ..BudgetSpec::default() };
                let persist = PersistOptions {
                    checkpoint: Some(ck_path.clone()),
                    checkpoint_every: 1,
                    ..PersistOptions::default()
                };
                let run = verify_persistent(&stg, budgeted, &persist).unwrap();
                match run.exhausted() {
                    Some(reason) => {
                        assert_eq!(
                            reason,
                            ResourceError::StepBudget { limit: max_steps },
                            "{tag}/{max_steps}"
                        );
                        exhausted_rungs += 1;
                        // Resume with the budget lifted: bit-identical
                        // verdict and state count, whether or not the trip
                        // happened early enough to leave no checkpoint.
                        let resume = PersistOptions {
                            checkpoint: Some(ck_path.clone()),
                            resume: true,
                            ..PersistOptions::default()
                        };
                        let resumed = verify_persistent(&stg, opts, &resume).unwrap();
                        let report = resumed.into_report().unwrap_or_else(|| {
                            panic!("{tag}/{max_steps}: unbudgeted resume must complete")
                        });
                        assert_eq!(report.verdict, scratch.verdict, "{tag}/{max_steps}");
                        assert_eq!(report.num_states, scratch.num_states, "{tag}/{max_steps}");
                    }
                    None => {
                        let report = run.into_report().unwrap();
                        assert_eq!(report.verdict, scratch.verdict, "{tag}/{max_steps}");
                        assert_eq!(report.num_states, scratch.num_states, "{tag}/{max_steps}");
                    }
                }
            }
            assert!(
                exhausted_rungs > 0,
                "{tag}: the ladder never tripped — budgets too generous to test anything"
            );
        }
    }
}

/// A tight live-node budget is a typed exhaustion, and `--fallback`
/// rescues the same budget by re-running the remaining fixpoint with the
/// saturation engine plus forced sifting.
#[test]
fn fallback_ladder_completes_where_the_plain_budget_exhausts() {
    let stg = bench_net("master_read_3.g");
    let scratch = verify(&stg, VerifyOptions::default()).unwrap();

    let mut opts = VerifyOptions {
        budget: BudgetSpec { max_nodes: 2000, ..BudgetSpec::default() },
        ..VerifyOptions::default()
    };
    let run = verify_persistent(&stg, opts, &PersistOptions::default()).unwrap();
    assert_eq!(
        run.exhausted(),
        Some(ResourceError::NodeBudget { limit: 2000 }),
        "notes: {:?}",
        run.notes
    );

    opts.budget.fallback = true;
    let run = verify_persistent(&stg, opts, &PersistOptions::default()).unwrap();
    assert!(run.fell_back, "notes: {:?}", run.notes);
    let report = run.into_report().expect("fallback must complete this budget");
    assert_eq!(report.verdict, scratch.verdict);
    assert_eq!(report.num_states, scratch.num_states);
}

/// Raising the external cancel flag interrupts the run with
/// `Outcome::Interrupted` — the same cooperative path as `--abort-after`
/// — instead of completing or erroring.
#[test]
fn external_cancel_flag_interrupts_the_run() {
    let stg = bench_net("master_read_3.g");
    let flag = Arc::new(AtomicBool::new(true)); // pre-raised: trip at the first poll
    let persist = PersistOptions { cancel: Some(flag.clone()), ..PersistOptions::default() };
    let run = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert!(run.interrupted(), "notes: {:?}", run.notes);
    assert!(run.report().is_none());

    // Lowered flag: same options complete normally.
    flag.store(false, Ordering::Relaxed);
    let run = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert!(run.report().is_some(), "notes: {:?}", run.notes);
}

/// Injected arena-allocation failures surface as typed
/// `VerifyError::Exhausted(ArenaExhausted)` — never a panic — whether
/// they hit the very first allocation or one deep inside the traversal.
#[test]
fn arena_allocation_faults_are_typed_errors_not_panics() {
    let _guard = failpoint::exclusive();
    failpoint::disarm_all();
    let stg = bench_net("master_read_2.g");

    for spec in ["arena-alloc", "arena-alloc=1", "arena-alloc=500"] {
        failpoint::arm(spec).unwrap();
        let err = verify(&stg, VerifyOptions::default())
            .expect_err(&format!("{spec}: an injected alloc failure cannot complete"));
        assert!(
            matches!(err, VerifyError::Exhausted(ResourceError::ArenaExhausted)),
            "{spec}: got {err}"
        );
        failpoint::disarm_all();
    }

    // Disarmed again: the same net verifies cleanly in this process.
    assert!(verify(&stg, VerifyOptions::default()).is_ok());
}

/// Store write/rename faults never leave an artifact a later run
/// accepts: the faulted run still completes (with a note), and the next
/// disarmed run is a clean *cold* recompute with the identical verdict.
/// A mid-set rename fault leaves crash debris (`.tmp`) plus a complete
/// first artifact — the loaders must serve the complete artifact and
/// ignore the debris.
#[test]
fn store_faults_never_yield_an_accepted_partial_artifact() {
    let _guard = failpoint::exclusive();
    failpoint::disarm_all();
    let stg = bench_net("celement.g");
    let scratch = verify(&stg, VerifyOptions::default()).unwrap();

    for spec in ["store-write", "store-rename"] {
        let dir = tmp(&format!("store-fault-{spec}"));
        let persist = PersistOptions { cache_dir: Some(dir.clone()), ..PersistOptions::default() };
        failpoint::arm(spec).unwrap();
        let run = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
        let report = run.into_report().expect("a store fault must not sink the verification");
        assert_eq!(report.verdict, scratch.verdict, "{spec}");
        failpoint::disarm_all();

        // Nothing usable was stored: the next run is cold, not warm.
        let run = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
        assert_eq!(run.cache, CacheStatus::Cold, "{spec}: partial artifact accepted");
        assert_eq!(run.into_report().unwrap().verdict, scratch.verdict, "{spec}");
        // ... and that cold run repaired the cache.
        let run = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
        assert_eq!(run.cache, CacheStatus::Warm, "{spec}");
    }

    // Failing the *second* rename of the artifact set leaves a valid
    // report plus `.tmp` debris for the reached set. The report is a
    // complete artifact — serving it warm is correct — and the debris is
    // never parsed under a valid name.
    let dir = tmp("store-fault-second-rename");
    let persist = PersistOptions { cache_dir: Some(dir.clone()), ..PersistOptions::default() };
    failpoint::arm("store-rename=2").unwrap();
    let run = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert_eq!(run.into_report().unwrap().verdict, scratch.verdict);
    failpoint::disarm_all();
    let debris: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
        .collect();
    assert!(!debris.is_empty(), "rename fault must leave simulated crash debris");
    let run = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert_eq!(run.into_report().unwrap().verdict, scratch.verdict);
}

/// An unreadable store (injected via `store-read`) silently degrades a
/// would-be warm hit to a cold recompute with the identical verdict.
#[test]
fn store_read_faults_degrade_to_a_clean_cold_recompute() {
    let _guard = failpoint::exclusive();
    failpoint::disarm_all();
    let stg = bench_net("celement.g");
    let dir = tmp("store-read-fault");
    let persist = PersistOptions { cache_dir: Some(dir), ..PersistOptions::default() };

    let cold = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert_eq!(cold.cache, CacheStatus::Cold);
    let warm = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert_eq!(warm.cache, CacheStatus::Warm);

    failpoint::arm("store-read").unwrap();
    let faulted = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert_eq!(faulted.cache, CacheStatus::Cold, "unreadable store must recompute");
    assert_eq!(faulted.into_report().unwrap().verdict, cold.into_report().unwrap().verdict);
    failpoint::disarm_all();

    let again = verify_persistent(&stg, VerifyOptions::default(), &persist).unwrap();
    assert_eq!(again.cache, CacheStatus::Warm, "store must be intact after the fault");
}

/// Oversized and non-ordinary nets are typed errors at the front door,
/// not downstream panics: the 510-variable packed-cell cap turns into
/// `VerifyError::TooManyVariables` before anything is encoded.
#[test]
fn oversized_nets_are_rejected_with_a_typed_error() {
    // A linear dummy chain of ~600 places: places + signals > MAX_VARS.
    let mut g = String::from(".model huge\n.inputs a\n.outputs b\n.dummy");
    for i in 0..600 {
        g.push_str(&format!(" d{i}"));
    }
    g.push_str("\n.graph\na+ d0\n");
    for i in 0..599 {
        g.push_str(&format!("d{i} d{}\n", i + 1));
    }
    g.push_str("d599 b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n");
    let stg = parse_g(&g).unwrap();
    let err = verify(&stg, VerifyOptions::default()).expect_err("600-var net must be rejected");
    assert!(matches!(err, VerifyError::TooManyVariables { .. }), "got {err}");
}
