//! Cross-engine differential tests: the explicit state-graph checker
//! (`stgcheck-stg`) and the symbolic BDD checker (`stgcheck-core`) must
//! agree on every property, for every benchmark family and fixture, and
//! for randomly generated safe STGs.
//!
//! The scalable families come from the persistent fixtures under
//! `benchmarks/` (parsed from disk, so the `.g` corpus itself is under
//! test); regenerate them with `cargo run --example gen_data`.

mod common;

use common::{fixture, fixture_corpus, imported_corpus};
use stgcheck::core::{
    cross_check_reachability, verify, EngineKind, EngineOptions, ReorderMode, SymbolicStg,
    TraversalStrategy, VarOrder, VerifyOptions,
};
use stgcheck::stg::gen;
use stgcheck::stg::{
    build_state_graph, check_explicit, csc_holds_for_signal, has_complementary_input_sequences,
    signal_persistency_violations, PersistencyPolicy, SgOptions, Stg,
};

fn corpus() -> Vec<Stg> {
    let mut all = fixture_corpus();
    all.extend(imported_corpus());
    all.extend([
        gen::mutex_element(),
        gen::muller_pipeline(7),
        gen::master_read(4),
        gen::par_handshakes(4),
        gen::vme_read(),
        gen::csc_violation_stg(),
        gen::irreducible_csc_stg(),
        gen::nonpersistent_stg(),
        gen::fig3_d1(),
        gen::fig3_d2(),
    ]);
    all
}

#[test]
fn fixtures_match_their_generators() {
    for (name, fresh) in gen::benchmark_fixtures() {
        let on_disk = fixture(name);
        assert_eq!(
            stgcheck::stg::write_g(&on_disk),
            stgcheck::stg::write_g(&fresh),
            "{name} drifted from its generator — rerun `cargo run --example gen_data`"
        );
    }
}

#[test]
fn reachability_agrees_on_corpus() {
    for stg in corpus() {
        for order in
            [VarOrder::Interleaved, VarOrder::PlacesThenSignals, VarOrder::SignalsThenPlaces]
        {
            cross_check_reachability(&stg, order)
                .unwrap_or_else(|e| panic!("{} under {order:?}: {e}", stg.name()));
        }
    }
}

#[test]
fn persistency_agrees_on_corpus() {
    for stg in corpus() {
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        for policy in [PersistencyPolicy::default(), PersistencyPolicy { allow_arbitration: true }]
        {
            let explicit = signal_persistency_violations(&stg, &sg, policy);
            let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
            let code = sym.effective_initial_code().unwrap();
            let t = sym.traverse(code, TraversalStrategy::Chained);
            let r_n = sym.project_markings(t.reached);
            let symbolic = sym.check_signal_persistency(r_n, policy);
            assert_eq!(
                explicit.is_empty(),
                symbolic.is_empty(),
                "{} policy {policy:?}",
                stg.name()
            );
        }
    }
}

#[test]
fn csc_and_reducibility_agree_on_corpus() {
    for stg in corpus() {
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = sym.effective_initial_code().unwrap();
        let t = sym.traverse(code, TraversalStrategy::Chained);
        for a in stg.noninput_signals() {
            let analysis = sym.check_csc_signal(t.reached, a);
            assert_eq!(
                csc_holds_for_signal(&stg, &sg, a),
                analysis.holds,
                "{} CSC({})",
                stg.name(),
                stg.signal_name(a)
            );
            let sym_mcis =
                sym.has_complementary_input_sequences(t.reached, a, analysis.contradictory);
            assert_eq!(
                has_complementary_input_sequences(&stg, &sg, a),
                sym_mcis,
                "{} MCIS({})",
                stg.name(),
                stg.signal_name(a)
            );
        }
    }
}

#[test]
fn verdicts_agree_on_fake_free_corpus() {
    for stg in corpus() {
        let explicit = check_explicit(&stg, SgOptions::default(), PersistencyPolicy::default());
        let symbolic = verify(&stg, VerifyOptions::default()).unwrap();
        if symbolic.fake_free() {
            assert_eq!(explicit.verdict, symbolic.verdict, "{}", stg.name());
        } else {
            // Fake conflicts are a well-formedness rejection on the
            // symbolic side only (the paper's tool behaviour).
            assert_eq!(
                symbolic.verdict,
                stgcheck::stg::Implementability::NotImplementable,
                "{}",
                stg.name()
            );
        }
        assert_eq!(explicit.states as u128, symbolic.num_states, "{}", stg.name());
        assert_eq!(explicit.safe, symbolic.safe(), "{}", stg.name());
        assert_eq!(explicit.consistent(), symbolic.consistent(), "{}", stg.name());
    }
}

#[test]
fn dead_transitions_agree_between_engines() {
    for stg in corpus() {
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        let explicit = stgcheck::stg::dead_transitions(&stg, &sg);
        let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
        let code = sym.effective_initial_code().unwrap();
        let t = sym.traverse(code, TraversalStrategy::Chained);
        let mut symbolic = sym.dead_transitions(t.reached);
        symbolic.sort();
        let mut explicit = explicit;
        explicit.sort();
        // The explicit notion (never fires) can differ from the symbolic
        // one (never enabled) only for enabled-but-blocked transitions,
        // which cannot happen in a consistent STG; assert equality.
        assert_eq!(explicit, symbolic, "{}", stg.name());
    }
}

/// The saturation engine against the explicit checker: its reached set
/// (the state count is an exact proxy — the engines-suite already pins
/// the handle) and every verdict facet must match the `state_graph`
/// enumeration on random safe STGs, across all three reorder modes, on
/// the corpus nets too.
#[test]
fn saturation_agrees_with_explicit_enumeration() {
    let mut nets: Vec<Stg> = (0..40u64).map(gen::random_safe_stg).collect();
    nets.extend(corpus());
    for stg in nets {
        let explicit = check_explicit(&stg, SgOptions::default(), PersistencyPolicy::default());
        for reorder in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
            let opts = VerifyOptions {
                engine: EngineOptions { kind: EngineKind::Saturation, ..Default::default() },
                reorder,
                ..VerifyOptions::default()
            };
            let symbolic = verify(&stg, opts).unwrap();
            let ctx = format!("{} reorder {reorder}", stg.name());
            assert_eq!(explicit.states as u128, symbolic.num_states, "{ctx}: state counts");
            assert_eq!(explicit.consistent(), symbolic.consistent(), "{ctx}: consistency");
            assert_eq!(explicit.safe, symbolic.safe(), "{ctx}: safety");
            assert_eq!(
                explicit.persistency.is_empty(),
                symbolic.persistent(),
                "{ctx}: persistency"
            );
            if symbolic.fake_free() {
                assert_eq!(explicit.verdict, symbolic.verdict, "{ctx}: verdict");
            }
            assert_eq!(symbolic.engine, "saturation", "{ctx}: engine column");
        }
    }
}

#[test]
fn random_stgs_agree_between_engines() {
    for seed in 0..40u64 {
        let stg = gen::random_safe_stg(seed);
        // Some random nets may deadlock or be tiny — that's fine, the
        // engines must still agree.
        let explicit = check_explicit(&stg, SgOptions::default(), PersistencyPolicy::default());
        let symbolic = verify(&stg, VerifyOptions::default()).unwrap();
        assert_eq!(explicit.states as u128, symbolic.num_states, "seed {seed}: state counts");
        assert_eq!(explicit.consistent(), symbolic.consistent(), "seed {seed}: consistency");
        assert_eq!(explicit.safe, symbolic.safe(), "seed {seed}: safety");
        assert_eq!(
            explicit.persistency.is_empty(),
            symbolic.persistent(),
            "seed {seed}: persistency"
        );
        if !explicit.consistent() || !explicit.safe {
            // CSC comparison below needs a constructed state graph.
            continue;
        }
        for a in stg.noninput_signals() {
            let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
            let mut sym = SymbolicStg::new(&stg, VarOrder::Interleaved);
            let code = sym.effective_initial_code().unwrap();
            let t = sym.traverse(code, TraversalStrategy::Chained);
            let analysis = sym.check_csc_signal(t.reached, a);
            assert_eq!(
                csc_holds_for_signal(&stg, &sg, a),
                analysis.holds,
                "seed {seed}: CSC({})",
                stg.signal_name(a)
            );
        }
    }
}
