//! Integration tests for the logic-derivation extension: derived
//! equations must agree between independently computed forms and be
//! consistent with the explicit state graph.

use stgcheck::core::{SymbolicStg, TraversalStrategy, VarOrder};
use stgcheck::stg::gen;
use stgcheck::stg::{build_state_graph, SgOptions, SignalId, Stg};

fn functions_of(stg: &Stg) -> (SymbolicStg<'_>, Vec<stgcheck::core::SignalFunction>) {
    let mut sym = SymbolicStg::new(stg, VarOrder::Interleaved);
    let code = sym.effective_initial_code().unwrap();
    let t = sym.traverse(code, TraversalStrategy::Chained);
    let fs = sym.derive_all_functions(t.reached).expect("CSC holds");
    (sym, fs)
}

/// For every reachable explicit state, the derived function of each
/// output evaluates to the signal's *next* stable value: 1 on rising
/// excitation and high quiescence, 0 otherwise.
#[test]
fn equations_match_explicit_regions() {
    for stg in [gen::muller_pipeline(4), gen::master_read(2), gen::ring(3)] {
        let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
        let (sym, fs) = functions_of(&stg);
        for f in &fs {
            for v in 0..sg.len() {
                let state = sg.state(v);
                let edges = sg.enabled_edges(&stg, v);
                let rising = edges.contains(&(f.signal, stgcheck::stg::Polarity::Rise));
                let falling = edges.contains(&(f.signal, stgcheck::stg::Polarity::Fall));
                let value = state.code.get(f.signal);
                let expected = rising || (value && !falling);
                // Evaluate the on-set BDD under this state's code.
                let mut assignment = vec![false; sym.manager().num_vars()];
                for s in stg.signals() {
                    assignment[sym.signal_var(s).index()] = state.code.get(s);
                }
                let got = sym.manager().eval(f.on, &assignment);
                assert_eq!(
                    got,
                    expected,
                    "{}: signal {} at state {}",
                    stg.name(),
                    stg.signal_name(f.signal),
                    state.code.to_bit_string(stg.num_signals())
                );
            }
        }
    }
}

/// The derived network, iterated as a closed system, must be stable
/// exactly in the quiescent states: a state is an equilibrium of all
/// non-input functions iff no non-input signal is excited.
#[test]
fn equilibria_are_quiescent_states() {
    let stg = gen::muller_pipeline(3);
    let sg = build_state_graph(&stg, SgOptions::default()).unwrap();
    let (sym, fs) = functions_of(&stg);
    for v in 0..sg.len() {
        let state = sg.state(v);
        let mut assignment = vec![false; sym.manager().num_vars()];
        for s in stg.signals() {
            assignment[sym.signal_var(s).index()] = state.code.get(s);
        }
        let stable =
            fs.iter().all(|f| sym.manager().eval(f.on, &assignment) == state.code.get(f.signal));
        let excited: Vec<SignalId> = sg.enabled_noninput_signals(&stg, v);
        assert_eq!(
            stable,
            excited.is_empty(),
            "state {}",
            state.code.to_bit_string(stg.num_signals())
        );
    }
}

/// SOP rendering is parseable by the boolean-expression parser and
/// semantically equal to the on-set.
#[test]
fn sop_strings_round_trip_through_expression_parser() {
    use stgcheck::bdd::BoolExpr;
    let stg = gen::muller_pipeline(4);
    let (sym, fs) = functions_of(&stg);
    for f in &fs {
        let sop = sym.function_to_sop(f);
        let rhs = sop.split(" = ").nth(1).unwrap();
        // Our SOP dialect: `x'` is negation, juxtaposition is AND.
        let normalised = rhs
            .split(" + ")
            .map(|term| {
                let lits: Vec<String> = term
                    .split_whitespace()
                    .map(|l| match l.strip_suffix('\'') {
                        Some(base) => format!("!{base}"),
                        None => l.to_string(),
                    })
                    .collect();
                format!("({})", lits.join(" & "))
            })
            .collect::<Vec<_>>()
            .join(" | ");
        let expr =
            BoolExpr::parse(&normalised).unwrap_or_else(|e| panic!("{sop} -> {normalised}: {e}"));
        // Evaluate both on all signal codes.
        let n = stg.num_signals();
        for bits in 0..(1u32 << n) {
            let mut assignment = vec![false; sym.manager().num_vars()];
            for s in stg.signals() {
                assignment[sym.signal_var(s).index()] = bits & (1 << s.index()) != 0;
            }
            let lookup = |name: &str| -> Option<bool> {
                let s = stg.signal_by_name(name)?;
                Some(bits & (1 << s.index()) != 0)
            };
            assert_eq!(
                sym.manager().eval(f.on, &assignment),
                expr.eval(&lookup),
                "{sop} differs at {bits:b}"
            );
        }
    }
}
