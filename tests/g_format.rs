//! Integration tests for the `.g` interchange path: every generator
//! round-trips through the writer and parser with identical verification
//! results, and hand-written files (with dummies, explicit places,
//! multi-token markings) verify as expected.

use stgcheck::core::{verify, VerifyOptions};
use stgcheck::stg::gen;
use stgcheck::stg::{parse_g, write_g, Implementability, PersistencyPolicy};

#[test]
fn generators_round_trip_through_g() {
    for stg in [
        gen::mutex_element(),
        gen::muller_pipeline(4),
        gen::master_read(2),
        gen::par_handshakes(3),
        gen::vme_read(),
        gen::csc_violation_stg(),
        gen::irreducible_csc_stg(),
        gen::fig3_d1(),
        gen::fig3_d2(),
    ] {
        let text = write_g(&stg);
        let back = parse_g(&text).unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        assert_eq!(back.name(), stg.name());
        assert_eq!(back.num_signals(), stg.num_signals());
        assert_eq!(back.net().num_places(), stg.net().num_places());
        assert_eq!(back.net().num_transitions(), stg.net().num_transitions());
        // The round-tripped STG has no declared initial code — the
        // verifier infers it — and must reach the same verdict.
        let original = verify(&stg, VerifyOptions::default()).unwrap();
        let reparsed = verify(&back, VerifyOptions::default()).unwrap();
        assert_eq!(original.verdict, reparsed.verdict, "{}", stg.name());
        assert_eq!(original.num_states, reparsed.num_states, "{}", stg.name());
    }
}

#[test]
fn hand_written_file_with_choice_and_dummy() {
    let src = "\
.model demo
.inputs go
.outputs led
.dummy fork
.graph
p0 fork
fork ready blink
ready go+
go+ led+
led+ go-
go- led-
blink led-
.marking { p0 }
.end
";
    // `blink led-`: led- waits for both its own handshake and the dummy's
    // blink place.
    let stg = parse_g(src).unwrap();
    assert_eq!(stg.num_signals(), 2);
    let fork = stg.net().trans_by_name("fork").unwrap();
    assert!(stg.is_dummy(fork));
    let report = verify(&stg, VerifyOptions::default()).unwrap();
    assert!(report.consistent());
    assert!(report.safe());
}

#[test]
fn inferred_initial_code_matches_declared() {
    // Write out a generator (dropping its declared code) and check that
    // inference recovers it.
    for stg in [gen::muller_pipeline(4), gen::vme_read(), gen::mutex_element()] {
        let declared = stg.initial_code().expect("generators declare codes");
        let reparsed = parse_g(&write_g(&stg)).unwrap();
        assert_eq!(reparsed.initial_code(), None);
        let report = verify(&reparsed, VerifyOptions::default()).unwrap();
        assert_eq!(report.initial_code, declared, "{}", stg.name());
    }
}

#[test]
fn verdicts_from_files() {
    let handshake = "\
.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
";
    let stg = parse_g(handshake).unwrap();
    let report = verify(&stg, VerifyOptions::default()).unwrap();
    assert_eq!(report.verdict, Implementability::Gate);

    // Arbitration-needing file: the n=2 mutex, exported and re-imported.
    let mutex_text = write_g(&gen::mutex_element());
    let mutex = parse_g(&mutex_text).unwrap();
    let strict = verify(&mutex, VerifyOptions::default()).unwrap();
    assert_eq!(strict.verdict, Implementability::NotImplementable);
    let relaxed = verify(
        &mutex,
        VerifyOptions {
            policy: PersistencyPolicy { allow_arbitration: true },
            ..VerifyOptions::default()
        },
    )
    .unwrap();
    assert_eq!(relaxed.verdict, Implementability::Gate);
}
